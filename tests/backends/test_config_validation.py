"""Construction-time validation of every device configuration table.

ISSUE 7 satellite: derived values such as ``DeviceProperties.total_cores``
used to be merely *computed* — a zero or negative parameter silently
produced a nonsense cost model.  The design-space search constructs
thousands of candidate tables, so each config dataclass now rejects
non-positive or mutually inconsistent parameters at construction.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.ap.staran import STARAN, ApConfig
from repro.cuda.device import TITAN_X_PASCAL, DeviceProperties
from repro.mimd.xeon import XEON_16, MimdConfig
from repro.simd.clearspeed import CSX600, SimdConfig
from repro.simd.network import RingNetwork
from repro.vector.machine import XEON_PHI_7250, VectorConfig


def _replace(config, **changes):
    return dataclasses.replace(config, **changes)


class TestDeviceProperties:
    @pytest.mark.parametrize(
        "field_name",
        [
            "sm_count",
            "cores_per_sm",
            "core_clock_ghz",
            "mem_bandwidth_gbs",
            "dram_latency_cycles",
            "max_blocks_per_sm",
            "pcie_bandwidth_gbs",
            "mem_segment_bytes",
            "smem_per_sm_bytes",
        ],
    )
    @pytest.mark.parametrize("bad", [0, -1])
    def test_positive_fields_rejected(self, field_name, bad):
        with pytest.raises(ValueError, match=field_name):
            _replace(TITAN_X_PASCAL, **{field_name: bad})

    @pytest.mark.parametrize(
        "field_name", ["pcie_latency_s", "kernel_launch_s", "l2_bytes"]
    )
    def test_non_negative_fields_reject_negative(self, field_name):
        with pytest.raises(ValueError, match=field_name):
            _replace(TITAN_X_PASCAL, **{field_name: -1})
        # Zero is legitimate (the 9800 GT really has l2_bytes=0).
        _replace(TITAN_X_PASCAL, **{field_name: 0})

    def test_special_op_factor_below_one_rejected(self):
        with pytest.raises(ValueError, match="special_op_factor"):
            _replace(TITAN_X_PASCAL, special_op_factor=0.5)
        _replace(TITAN_X_PASCAL, special_op_factor=1.0)

    def test_max_threads_per_sm_must_be_whole_warps(self):
        with pytest.raises(ValueError, match="warps"):
            _replace(TITAN_X_PASCAL, max_threads_per_sm=2048 + 13)

    def test_block_limit_cannot_exceed_sm_limit(self):
        with pytest.raises(ValueError, match="max_threads_per_block"):
            _replace(
                TITAN_X_PASCAL,
                max_threads_per_sm=512,
                max_threads_per_block=1024,
            )

    def test_nan_is_rejected(self):
        # ``not nan > 0`` is True, so NaN lands in the positive check.
        with pytest.raises(ValueError, match="core_clock_ghz"):
            _replace(TITAN_X_PASCAL, core_clock_ghz=float("nan"))

    def test_valid_table_derives_consistent_values(self):
        dev = _replace(TITAN_X_PASCAL, sm_count=4, cores_per_sm=96)
        assert dev.total_cores == 384
        assert dev.max_warps_per_sm == dev.max_threads_per_sm // 32
        assert dev.peak_gflops > 0


class TestSimdConfig:
    @pytest.mark.parametrize("bad", [0, -96])
    def test_n_pes_positive(self, bad):
        with pytest.raises(ValueError, match="n_pes"):
            _replace(CSX600, n_pes=bad, network=RingNetwork(n_pes=96))

    def test_clock_positive(self):
        with pytest.raises(ValueError, match="clock_hz"):
            _replace(CSX600, clock_hz=0.0)

    def test_network_size_must_match_array(self):
        with pytest.raises(ValueError, match="ring network"):
            _replace(CSX600, network=RingNetwork(n_pes=128))

    def test_consistent_resize_accepted(self):
        cfg = _replace(CSX600, n_pes=128, network=RingNetwork(n_pes=128))
        assert cfg.peak_ops_per_s == 128 * cfg.clock_hz


class TestApConfig:
    def test_clock_positive(self):
        with pytest.raises(ValueError, match="clock_hz"):
            _replace(STARAN, clock_hz=-40e6)

    @pytest.mark.parametrize("bad", [0, -256])
    def test_pes_per_module_positive(self, bad):
        with pytest.raises(ValueError, match="pes_per_module"):
            _replace(STARAN, pes_per_module=bad)


class TestMimdConfig:
    @pytest.mark.parametrize("field_name", ["n_cores", "clock_hz", "ipc"])
    @pytest.mark.parametrize("bad", [0, -1])
    def test_positive_fields(self, field_name, bad):
        with pytest.raises(ValueError, match=field_name):
            _replace(XEON_16, **{field_name: bad})

    @pytest.mark.parametrize(
        "field_name",
        ["lock_op_s", "read_lock_s", "queue_pop_s", "jitter_sigma"],
    )
    def test_non_negative_fields(self, field_name):
        with pytest.raises(ValueError, match=field_name):
            _replace(XEON_16, **{field_name: -1e-9})
        _replace(XEON_16, **{field_name: 0.0})

    def test_peak_uses_ipc(self):
        cfg = _replace(XEON_16, ipc=2.0)
        assert cfg.peak_ops_per_s == pytest.approx(2 * XEON_16.peak_ops_per_s)


class TestVectorConfig:
    @pytest.mark.parametrize(
        "field_name",
        ["n_cores", "lanes_per_core", "clock_hz", "mem_bandwidth_gbs"],
    )
    @pytest.mark.parametrize("bad", [0, -1])
    def test_positive_fields(self, field_name, bad):
        with pytest.raises(ValueError, match=field_name):
            _replace(XEON_PHI_7250, **{field_name: bad})

    def test_region_overhead_non_negative(self):
        with pytest.raises(ValueError, match="region_overhead_s"):
            _replace(XEON_PHI_7250, region_overhead_s=-1e-6)
        _replace(XEON_PHI_7250, region_overhead_s=0.0)

    def test_special_op_factor_below_one_rejected(self):
        with pytest.raises(ValueError, match="special_op_factor"):
            _replace(XEON_PHI_7250, special_op_factor=0.0)


class TestPaperConfigsStillConstruct:
    """The seven shipped tables must all pass their own validation."""

    def test_all_named_configs_valid(self):
        # Reconstructing each named config re-runs __post_init__.
        for cfg in (TITAN_X_PASCAL, CSX600, STARAN, XEON_16, XEON_PHI_7250):
            rebuilt = _replace(cfg)
            assert rebuilt == cfg
