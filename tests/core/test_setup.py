"""Unit tests for SetupFlight (the airfield initialisation)."""

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.setup import setup_flight, setup_flight_rows


class TestSetupFlight:
    def test_positions_cover_the_airfield(self):
        f = setup_flight(5000, seed=1)
        assert np.all(np.abs(f.x) <= C.GRID_HALF_NM)
        assert np.all(np.abs(f.y) <= C.GRID_HALF_NM)
        # All four quadrants are populated (the parity sign trick works).
        assert np.any((f.x > 0) & (f.y > 0))
        assert np.any((f.x < 0) & (f.y > 0))
        assert np.any((f.x > 0) & (f.y < 0))
        assert np.any((f.x < 0) & (f.y < 0))

    def test_speed_band(self):
        f = setup_flight(5000, seed=2)
        speeds = f.speeds_knots()
        assert np.all(speeds >= C.SPEED_MIN_KNOTS - 1e-9)
        assert np.all(speeds <= C.SPEED_MAX_KNOTS + 1e-9)

    def test_velocity_components_consistent(self):
        """|dy| = sqrt(S^2 - dx^2) exactly (per-period units)."""
        f = setup_flight(1000, seed=3)
        s2 = (f.dx * C.PERIODS_PER_HOUR) ** 2 + (f.dy * C.PERIODS_PER_HOUR) ** 2
        speeds = np.sqrt(s2)
        assert np.all(speeds <= C.SPEED_MAX_KNOTS + 1e-9)
        # dx magnitude drawn from [30, S]: never exceeds the speed.
        assert np.all(np.abs(f.dx) <= f.speeds_per_period() + 1e-15)
        assert np.all(np.abs(f.dx) * C.PERIODS_PER_HOUR >= C.SPEED_MIN_KNOTS - 1e-9)

    def test_velocities_signed_in_all_directions(self):
        f = setup_flight(5000, seed=4)
        assert np.any(f.dx > 0) and np.any(f.dx < 0)
        assert np.any(f.dy > 0) and np.any(f.dy < 0)

    def test_altitude_band(self):
        f = setup_flight(2000, seed=5)
        assert np.all(f.alt >= C.ALTITUDE_MIN_FT)
        assert np.all(f.alt <= C.ALTITUDE_MAX_FT)

    def test_deterministic(self):
        a = setup_flight(500, seed=2018)
        b = setup_flight(500, seed=2018)
        assert a.state_equal(b)

    def test_seed_changes_fleet(self):
        a = setup_flight(500, seed=1)
        b = setup_flight(500, seed=2)
        assert not a.state_equal(b)

    def test_trial_path_initialised_to_velocity(self):
        f = setup_flight(100, seed=6)
        assert np.array_equal(f.batdx, f.dx)
        assert np.array_equal(f.batdy, f.dy)

    def test_prefix_stability(self):
        """Counter-based generation: fleet of 100 is a prefix of fleet of 200."""
        small = setup_flight(100, seed=2018)
        big = setup_flight(200, seed=2018)
        assert np.array_equal(small.x, big.x[:100])
        assert np.array_equal(small.dy, big.dy[:100])
        assert np.array_equal(small.alt, big.alt[:100])


class TestSetupFlightRows:
    def test_subset_matches_full(self):
        """Per-thread generation (arbitrary id subsets) matches the full
        fleet — the property that makes GPU/PE-chunked setup exact."""
        full = setup_flight(256, seed=2018)
        ids = np.array([3, 200, 77, 5])
        rows = setup_flight_rows(2018, ids)
        assert np.array_equal(rows["x"], full.x[ids])
        assert np.array_equal(rows["dx"], full.dx[ids])
        assert np.array_equal(rows["alt"], full.alt[ids])

    def test_empty_subset(self):
        rows = setup_flight_rows(2018, np.array([], dtype=np.int64))
        assert rows["x"].shape == (0,)


def test_setup_flight_validates():
    # setup_flight runs validate() internally; a successful call implies
    # a structurally sound fleet.  Smoke-check a few sizes.
    for n in (1, 2, 96, 97):
        f = setup_flight(n, seed=11)
        assert f.n == n
