"""Unit tests for the Simulation façade."""

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.simulation import Simulation


class TestConstruction:
    def test_default_backend_is_reference(self):
        sim = Simulation(32)
        assert sim.backend.name == "reference"

    def test_backend_by_name(self):
        sim = Simulation(32, backend="cuda:titan-x-pascal")
        assert sim.backend.name == "cuda:titan-x-pascal"

    def test_unknown_backend(self):
        with pytest.raises(KeyError):
            Simulation(32, backend="cuda:imaginary")

    def test_fleet_size(self):
        assert Simulation(48).n_aircraft == 48


class TestStepping:
    def test_step_period_advances_clock(self):
        sim = Simulation(32)
        assert sim.current_period == 0
        sim.step_period()
        assert sim.current_period == 1

    def test_step_period_returns_timing(self):
        timing = Simulation(32).step_period()
        assert timing.task == "task1"
        assert timing.seconds > 0

    def test_run_counts_periods(self):
        sim = Simulation(32)
        result = sim.run(major_cycles=2)
        assert result.total_periods == 32
        assert sim.current_period == 32

    def test_run_collision_tasks(self):
        timing = Simulation(32).run_collision_tasks()
        assert timing.task == "task23"

    def test_step_major_cycle(self):
        result = Simulation(32).step_major_cycle()
        assert result.total_periods == C.PERIODS_PER_MAJOR_CYCLE

    def test_deterministic_runs(self):
        a = Simulation(64, seed=7)
        b = Simulation(64, seed=7)
        a.run()
        b.run()
        assert a.fleet.state_equal(b.fleet)


class TestInspection:
    def test_positions_shape(self):
        sim = Simulation(20)
        assert sim.positions().shape == (20, 2)

    def test_headings_range(self):
        h = Simulation(100).headings_deg()
        assert np.all(h >= -180.0) and np.all(h <= 180.0)

    def test_conflicts_now_after_collision_pass(self):
        sim = Simulation(64)
        assert sim.conflicts_now() == 0
        sim.run_collision_tasks()
        assert sim.conflicts_now() >= 0  # whatever remains unresolved

    def test_density(self):
        sim = Simulation(656)  # ~10 per 1000 nm^2 over 65536 nm^2
        assert sim.density_per_1000nm2() == pytest.approx(10.0, rel=0.01)
