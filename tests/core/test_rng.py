"""Unit tests for the counter-based random number generator."""

import numpy as np
import pytest

from repro.core.rng import (
    Stream,
    random_int,
    random_sign,
    random_uniform,
    random_unit,
    splitmix64,
)


class TestSplitMix64:
    def test_scalar_and_array_agree(self):
        arr = splitmix64(np.arange(10, dtype=np.uint64))
        for i in range(10):
            assert splitmix64(i) == arr[i]

    def test_deterministic(self):
        a = splitmix64(np.arange(1000))
        b = splitmix64(np.arange(1000))
        assert np.array_equal(a, b)

    def test_no_collisions_on_small_range(self):
        out = splitmix64(np.arange(100_000))
        assert np.unique(out).size == 100_000

    def test_wraps_at_64_bits(self):
        # 2**64 maps onto counter 0.
        assert splitmix64(np.uint64(0)) == splitmix64(0)

    def test_output_dtype(self):
        assert splitmix64(np.arange(4)).dtype == np.uint64


class TestRandomUnit:
    def test_range(self):
        u = random_unit(2018, np.arange(50_000), Stream.SETUP_X)
        assert np.all(u >= 0.0) and np.all(u < 1.0)

    def test_mean_is_half(self):
        u = random_unit(2018, np.arange(100_000), Stream.SETUP_X)
        assert abs(u.mean() - 0.5) < 0.01

    def test_order_independence(self):
        """The value for element i never depends on which others are drawn."""
        ids = np.array([5, 17, 3])
        batch = random_unit(7, ids, Stream.SETUP_Y)
        for k, i in enumerate(ids):
            assert random_unit(7, np.array([i]), Stream.SETUP_Y)[0] == batch[k]

    def test_streams_differ(self):
        ids = np.arange(100)
        a = random_unit(1, ids, Stream.SETUP_X)
        b = random_unit(1, ids, Stream.SETUP_Y)
        assert not np.array_equal(a, b)

    def test_seeds_differ(self):
        ids = np.arange(100)
        assert not np.array_equal(
            random_unit(1, ids, Stream.SETUP_X),
            random_unit(2, ids, Stream.SETUP_X),
        )


class TestRandomUniform:
    def test_bounds(self):
        x = random_uniform(9, np.arange(10_000), Stream.SETUP_SPEED, 30.0, 600.0)
        assert np.all(x >= 30.0) and np.all(x < 600.0)

    def test_array_bounds_broadcast(self):
        highs = np.full(1000, 100.0)
        x = random_uniform(9, np.arange(1000), Stream.SETUP_DX, 30.0, highs)
        assert np.all(x >= 30.0) and np.all(x < 100.0)

    def test_degenerate_interval(self):
        x = random_uniform(9, np.arange(10), Stream.SETUP_DX, 5.0, 5.0)
        assert np.all(x == 5.0)


class TestRandomInt:
    def test_inclusive_range(self):
        draws = random_int(3, np.arange(20_000), Stream.SETUP_X_SIGN, 0, 50)
        assert draws.min() == 0
        assert draws.max() == 50

    def test_every_value_hit(self):
        draws = random_int(3, np.arange(20_000), Stream.SETUP_X_SIGN, 0, 50)
        assert np.unique(draws).size == 51

    def test_empty_range_raises(self):
        with pytest.raises(ValueError):
            random_int(3, np.arange(4), Stream.SETUP_X_SIGN, 5, 4)

    def test_single_value_range(self):
        draws = random_int(3, np.arange(100), Stream.SETUP_X_SIGN, 7, 7)
        assert np.all(draws == 7)


class TestRandomSign:
    def test_values_are_plus_minus_one(self):
        s = random_sign(4, np.arange(10_000), Stream.SETUP_X_SIGN, negative_when_even=True)
        assert set(np.unique(s)) == {-1.0, 1.0}

    def test_parity_convention(self):
        """negative_when_even=True and False are exact complements."""
        ids = np.arange(5_000)
        a = random_sign(4, ids, Stream.SETUP_X_SIGN, negative_when_even=True)
        b = random_sign(4, ids, Stream.SETUP_X_SIGN, negative_when_even=False)
        assert np.array_equal(a, -b)

    def test_roughly_balanced(self):
        s = random_sign(4, np.arange(100_000), Stream.SETUP_Y_SIGN, negative_when_even=True)
        assert abs(s.mean()) < 0.02
