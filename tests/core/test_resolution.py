"""Unit tests for Task 3 (collision resolution)."""

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.collision import DetectionMode, detect, earliest_critical
from repro.core.resolution import detect_and_resolve, resolve

from ..conftest import make_two_aircraft


def crossing_pair():
    """Two aircraft on a critical head-on course along x."""
    return make_two_aircraft(
        x0=0.0, y0=0.0, dx0=0.05, dy0=0.0,
        x1=20.0, y1=0.0, dx1=-0.05, dy1=0.0,
    )


class TestResolve:
    def test_resolves_head_on_pair(self):
        fleet = crossing_pair()
        det = detect(fleet)
        assert det.flagged_aircraft == 2
        res = resolve(fleet)
        assert res.resolved >= 1
        assert res.unresolved == 0
        # After resolution neither aircraft has a critical conflict.
        for i in range(2):
            assert (
                earliest_critical(fleet, i, float(fleet.dx[i]), float(fleet.dy[i]))
                is None
            )

    def test_resolution_preserves_speed(self):
        fleet = crossing_pair()
        speeds_before = fleet.speeds_per_period().copy()
        detect_and_resolve(fleet)
        assert np.allclose(fleet.speeds_per_period(), speeds_before)

    def test_partner_clears_without_turning(self):
        """Once aircraft 0 turns away, aircraft 1's re-verification finds
        the conflict gone and clears the stale flag."""
        fleet = crossing_pair()
        det, res = detect_and_resolve(fleet)
        assert res.resolved + res.already_clear == 2
        assert np.all(fleet.col == 0)
        assert np.all(fleet.col_with == C.NO_MATCH)
        assert np.all(fleet.time_till == C.TIME_TILL_SAFE_PERIODS)

    def test_trial_attempts_recorded(self):
        fleet = crossing_pair()
        detect(fleet)
        res = resolve(fleet)
        assert res.trials_evaluated == res.attempts.sum()
        assert res.attempts.shape == (2,)
        assert sum(res.trials_histogram.values()) == res.resolved

    def test_no_flagged_aircraft_is_noop(self):
        fleet = make_two_aircraft(alt0=1000.0, alt1=30_000.0)
        detect(fleet)
        res = resolve(fleet)
        assert res.needed_resolution == 0
        assert res.trials_evaluated == 0

    def test_batdx_holds_last_trial(self):
        fleet = crossing_pair()
        detect(fleet)
        res = resolve(fleet)
        # The first resolving aircraft committed its trial velocity.
        resolved_ids = np.nonzero(res.attempts > 0)[0]
        i = int(resolved_ids[0])
        assert fleet.batdx[i] == fleet.dx[i]
        assert fleet.batdy[i] == fleet.dy[i]

    def test_unresolvable_keeps_original_path(self):
        """An aircraft ringed by conflicts on every trial heading keeps
        its path (the paper: altitude change would separate them)."""
        n = 26
        from repro.core.types import FleetState

        fleet = FleetState.empty(n)
        # Aircraft 0 in the centre, 25 aircraft converging from a circle.
        angles = np.linspace(0, 2 * np.pi, n - 1, endpoint=False)
        fleet.x[0] = 0.0
        fleet.y[0] = 0.0
        fleet.dx[0] = 0.02
        fleet.dy[0] = 0.0
        radius = 8.0
        fleet.x[1:] = radius * np.cos(angles)
        fleet.y[1:] = radius * np.sin(angles)
        speed = 0.03
        fleet.dx[1:] = -speed * np.cos(angles)
        fleet.dy[1:] = -speed * np.sin(angles)
        fleet.alt[:] = 10_000.0
        fleet.batdx[:] = fleet.dx
        fleet.batdy[:] = fleet.dy

        dx0, dy0 = float(fleet.dx[0]), float(fleet.dy[0])
        detect(fleet)
        assert fleet.col[0] == 1
        res = resolve(fleet)
        # Aircraft 0 tried everything first (index order) and failed.
        assert res.attempts[0] == C.RESOLUTION_MAX_TRIALS
        assert fleet.dx[0] == dx0 and fleet.dy[0] == dy0

    def test_mode_is_honoured(self):
        fleet = crossing_pair()
        det, res = detect_and_resolve(fleet, DetectionMode.PAPER_ABS)
        assert det.flagged_aircraft >= 1


class TestDetectAndResolve:
    def test_returns_both_stats(self):
        fleet = crossing_pair()
        det, res = detect_and_resolve(fleet)
        assert det.flagged_aircraft == 2
        assert res.needed_resolution + res.already_clear == 2

    def test_random_fleet_invariant(self):
        """After a full pass, every aircraft that committed a new path is
        critically clear against the final state."""
        from repro.core.setup import setup_flight

        fleet = setup_flight(300, 2018)
        det, res = detect_and_resolve(fleet)
        resolved_ids = np.nonzero((res.attempts > 0) & (fleet.col == 0))[0]
        # Note: later resolutions can re-endanger earlier ones within the
        # same pass; the invariant that always holds is that each resolved
        # aircraft was clear at its own commit moment, and that cleared
        # flags are consistent.
        assert np.all(fleet.time_till[fleet.col == 0] == C.TIME_TILL_SAFE_PERIODS)
        assert res.resolved + res.unresolved == res.needed_resolution
