"""Differential wall for the sweepline/grid-hash candidate pruners.

The contract under test is absolute: ``detect_pruned``, ``resolve_pruned``
and ``correlate(pruned=True)`` must be **bit-identical** to the
brute-force passes — every float compared through its uint64 bit
pattern, every stats field equal, on realistic fleets and on
hypothesis-generated adversarial ones whose altitudes sit one ulp from
the 1000 ft gate.  See docs/performance.md ("Large-n regime").
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import constants as C
from repro.core.collision import DetectionMode, detect, detect_chunk_rows
from repro.core.radar import generate_radar_frame
from repro.core.resolution import detect_and_resolve, resolve
from repro.core.setup import setup_flight
from repro.core.sweepline import (
    PRUNE_MIN_N,
    AltitudeBandIndex,
    PruningPolicy,
    detect_and_resolve_pruned,
    detect_pruned,
    resolve_pruned,
    resolve_pruning,
)
from repro.core.tracking import correlate
from repro.core.types import FleetState

MODES = (DetectionMode.SIGNED, DetectionMode.PAPER_ABS)


def bits(a: np.ndarray) -> np.ndarray:
    """Float arrays as uint64 bit patterns (NaN-safe exact equality)."""
    a = np.asarray(a)
    if a.dtype == np.float64:
        return a.view(np.uint64)
    return a


def snapshot(fleet: FleetState) -> dict:
    return {
        name: getattr(fleet, name).copy()
        for name in (
            "x", "y", "dx", "dy", "alt", "batdx", "batdy", "col",
            "time_till", "col_with", "r_match", "matched_radar",
            "expected_x", "expected_y",
        )
    }


def assert_fleet_bits_equal(a: dict, b: dict) -> None:
    for name in a:
        assert np.array_equal(bits(a[name]), bits(b[name])), name


def assert_detection_stats_equal(sa, sb) -> None:
    assert sa.pairs_checked == sb.pairs_checked
    assert sa.pairs_in_altitude_band == sb.pairs_in_altitude_band
    assert sa.conflicts == sb.conflicts
    assert sa.critical_conflicts == sb.critical_conflicts
    assert sa.flagged_aircraft == sb.flagged_aircraft
    assert np.array_equal(sa.critical_per_aircraft, sb.critical_per_aircraft)


def assert_tracking_stats_equal(sa, sb) -> None:
    assert sa.rounds_executed == sb.rounds_executed
    assert sa.candidate_pairs == sb.candidate_pairs
    assert sa.matched == sb.matched
    assert sa.discarded_radars == sb.discarded_radars
    assert sa.dropped_aircraft == sb.dropped_aircraft
    assert sa.committed == sb.committed
    assert sa.coasted == sb.coasted
    assert sa.round_active_planes == sb.round_active_planes
    assert len(sa.round_radar_ids) == len(sb.round_radar_ids)
    for ra, rb in zip(sa.round_radar_ids, sb.round_radar_ids):
        assert np.array_equal(ra, rb)
    for ca, cb in zip(
        sa.round_candidates_per_radar, sb.round_candidates_per_radar
    ):
        assert np.array_equal(ca, cb)


def assert_resolution_stats_equal(sa, sb) -> None:
    assert sa.needed_resolution == sb.needed_resolution
    assert sa.already_clear == sb.already_clear
    assert sa.resolved == sb.resolved
    assert sa.unresolved == sb.unresolved
    assert sa.trials_evaluated == sb.trials_evaluated
    assert sa.trials_histogram == sb.trials_histogram
    assert np.array_equal(sa.attempts, sb.attempts)


class TestPolicy:
    def test_auto_threshold(self):
        assert not resolve_pruning("auto", PRUNE_MIN_N - 1)
        assert resolve_pruning("auto", PRUNE_MIN_N)
        assert not resolve_pruning(None, 64)

    def test_forced(self):
        assert resolve_pruning("on", 1)
        assert not resolve_pruning("off", 10**7)
        assert resolve_pruning(PruningPolicy.ON, 2)
        assert not resolve_pruning(PruningPolicy.OFF, 10**7)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            resolve_pruning("sometimes", 100)


class TestAltitudeBandIndex:
    @pytest.mark.parametrize("n", [1, 7, 193, 960])
    def test_windows_match_brute_force_gate(self, n):
        fleet = setup_flight(n, 2018)
        index = AltitudeBandIndex(fleet)
        alt = fleet.alt
        sep = C.ALTITUDE_SEPARATION_FT
        # Window [begin, end) in sorted order == the brute-force gate
        # |fl(alt_j - alt_i)| < sep, evaluated per ordered pair.
        in_band = np.abs(alt[:, None] - alt[None, :]) < sep
        for i in range(n):
            window = set(index.order[index.begin[i]:index.end[i]])
            assert window == set(np.nonzero(in_band[i])[0]), i
        assert index.band_pairs == int(in_band.sum()) - n  # minus self-pairs


class TestDetectDifferential:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("n,seed", [(1, 2018), (64, 7), (193, 2018), (960, 2018)])
    def test_bit_identical_to_detect(self, mode, n, seed):
        brute = setup_flight(n, seed)
        pruned = setup_flight(n, seed)
        sa = detect(brute, mode)
        sb = detect_pruned(pruned, mode)
        assert_fleet_bits_equal(snapshot(brute), snapshot(pruned))
        assert_detection_stats_equal(sa, sb)
        assert sa.pairs_checked == n * (n - 1)

    @pytest.mark.parametrize("mode", MODES)
    def test_tiny_blocks_do_not_change_results(self, mode):
        brute = setup_flight(193, 2018)
        pruned = setup_flight(193, 2018)
        sa = detect(brute, mode)
        sb = detect_pruned(pruned, mode, block_cells=1)
        assert_fleet_bits_equal(snapshot(brute), snapshot(pruned))
        assert_detection_stats_equal(sa, sb)


class TestResolveDifferential:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("n,seed", [(64, 2018), (960, 2018), (960, 7)])
    def test_bit_identical_to_resolve(self, mode, n, seed):
        brute = setup_flight(n, seed)
        pruned = setup_flight(n, seed)
        detect(brute, mode)
        detect_pruned(pruned, mode)
        sa = resolve(brute, mode)
        sb = resolve_pruned(pruned, mode)
        assert_fleet_bits_equal(snapshot(brute), snapshot(pruned))
        assert_resolution_stats_equal(sa, sb)

    @pytest.mark.parametrize("mode", MODES)
    def test_fused_pass_matches(self, mode):
        brute = setup_flight(480, 2018)
        pruned = setup_flight(480, 2018)
        da, ra = detect_and_resolve(brute, mode)
        db, rb = detect_and_resolve_pruned(pruned, mode)
        assert_fleet_bits_equal(snapshot(brute), snapshot(pruned))
        assert_detection_stats_equal(da, db)
        assert_resolution_stats_equal(ra, rb)


class TestTrackingDifferential:
    @pytest.mark.parametrize("n,seed", [(64, 2018), (480, 7), (960, 2018)])
    def test_grid_hash_bit_identical(self, n, seed):
        fa = setup_flight(n, seed)
        fb = setup_flight(n, seed)
        ra = generate_radar_frame(fa, seed, 0)
        rb = generate_radar_frame(fb, seed, 0)
        sa = correlate(fa, ra)
        sb = correlate(fb, rb, pruned=True)
        assert_fleet_bits_equal(snapshot(fa), snapshot(fb))
        assert np.array_equal(ra.match_with, rb.match_with)
        assert_tracking_stats_equal(sa, sb)

    def test_with_dropout_and_clutter(self):
        fa = setup_flight(480, 2018)
        fb = setup_flight(480, 2018)
        for period in range(2):
            ra = generate_radar_frame(fa, 2018, period, dropout=0.1, clutter=32)
            rb = generate_radar_frame(fb, 2018, period, dropout=0.1, clutter=32)
            sa = correlate(fa, ra)
            sb = correlate(fb, rb, pruned=True)
            assert_fleet_bits_equal(snapshot(fa), snapshot(fb))
            assert_tracking_stats_equal(sa, sb)


class TestMultiPeriodDifferential:
    """The pruners stay bit-identical when their outputs feed the next
    period — errors would compound, so none may exist.  The loop mirrors
    :func:`repro.core.trace.stream_trace`'s measurement protocol."""

    @pytest.mark.parametrize("mode", MODES)
    def test_three_periods_then_collision(self, mode):
        fa = setup_flight(480, 2018)
        fb = setup_flight(480, 2018)
        for period in range(3):
            correlate(fa, generate_radar_frame(fa, 2018, period))
            correlate(fb, generate_radar_frame(fb, 2018, period), pruned=True)
            assert_fleet_bits_equal(snapshot(fa), snapshot(fb))
        detect_and_resolve(fa, mode)
        detect_and_resolve_pruned(fb, mode)
        assert_fleet_bits_equal(snapshot(fa), snapshot(fb))


def adversarial_fleet(alts, coords):
    """A fleet whose altitudes/positions are chosen by hypothesis."""
    n = len(alts)
    fleet = FleetState.empty(n)
    fleet.alt[:] = alts
    for i, (x, y, dx, dy) in enumerate(coords):
        fleet.x[i] = x
        fleet.y[i] = y
        fleet.dx[i] = dx
        fleet.dy[i] = dy
    return fleet


# Altitudes cluster around two flight levels exactly ALTITUDE_SEPARATION
# apart, displaced by 0..3 ulps — the boundary where |fl(a-b)| < 1000.0
# flips, which is precisely where an unsound pruner would diverge.
_base = st.sampled_from([4000.0, 17000.0, 29000.5])
_ulps = st.integers(min_value=-3, max_value=3)


@st.composite
def boundary_altitude(draw):
    level = draw(_base) + draw(st.sampled_from([0.0, C.ALTITUDE_SEPARATION_FT]))
    ulps = draw(_ulps)
    value = level
    for _ in range(abs(ulps)):
        value = np.nextafter(value, np.inf if ulps > 0 else -np.inf)
    return float(value)


_coord = st.tuples(
    st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
    st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
    st.floats(min_value=-0.25, max_value=0.25, allow_nan=False),
    st.floats(min_value=-0.25, max_value=0.25, allow_nan=False),
)


class TestAdversarialProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(boundary_altitude(), min_size=2, max_size=12),
        st.data(),
        st.sampled_from(MODES),
    )
    def test_detect_bit_identical_on_ulp_boundaries(self, alts, data, mode):
        coords = data.draw(
            st.lists(_coord, min_size=len(alts), max_size=len(alts))
        )
        brute = adversarial_fleet(alts, coords)
        pruned = adversarial_fleet(alts, coords)
        sa = detect(brute, mode)
        sb = detect_pruned(pruned, mode)
        assert_fleet_bits_equal(snapshot(brute), snapshot(pruned))
        assert_detection_stats_equal(sa, sb)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(boundary_altitude(), min_size=2, max_size=8),
        st.data(),
        st.sampled_from(MODES),
    )
    def test_resolve_bit_identical_on_ulp_boundaries(self, alts, data, mode):
        coords = data.draw(
            st.lists(_coord, min_size=len(alts), max_size=len(alts))
        )
        brute = adversarial_fleet(alts, coords)
        pruned = adversarial_fleet(alts, coords)
        detect(brute, mode)
        detect_pruned(pruned, mode)
        sa = resolve(brute, mode)
        sb = resolve_pruned(pruned, mode)
        assert_fleet_bits_equal(snapshot(brute), snapshot(pruned))
        assert_resolution_stats_equal(sa, sb)


class TestAdaptiveChunk:
    def test_chunk_rows_bounds(self):
        assert detect_chunk_rows(1) == 1
        assert detect_chunk_rows(960) == 960  # small fleets: one block
        big = detect_chunk_rows(1_000_000)
        assert 1 <= big < 1_000_000  # budget-limited at continental scale
        assert detect_chunk_rows(960, 96 * 960 * 10) == 10

    @pytest.mark.parametrize("mode", MODES)
    def test_adaptive_chunk_matches_fixed(self, mode):
        a = setup_flight(960, 2018)
        b = setup_flight(960, 2018)
        sa = detect(a, mode)  # adaptive default
        sb = detect(b, mode, chunk=512)  # the historical fixed chunk
        assert_fleet_bits_equal(snapshot(a), snapshot(b))
        assert_detection_stats_equal(sa, sb)
