"""Robustness tests: false radar echoes (clutter) against Task 1.

The paper motivates processing *all* primary radar — transponder-free
aircraft, smuggling flights, radar as transponder backup — which means a
real correlator faces echoes that belong to no tracked aircraft.  These
tests inject clutter and check the ambiguity rules hold up.
"""

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.radar import clutter_echoes, generate_radar_frame
from repro.core.setup import setup_flight
from repro.core.simulation import Simulation
from repro.core.tracking import correlate

from ..conftest import place_grid_fleet


class TestClutterEchoes:
    def test_positions_in_airfield(self):
        cx, cy = clutter_echoes(2018, 0, 500)
        assert np.all(np.abs(cx) <= C.GRID_HALF_NM)
        assert np.all(np.abs(cy) <= C.GRID_HALF_NM)

    def test_deterministic(self):
        a = clutter_echoes(2018, 3, 50)
        b = clutter_echoes(2018, 3, 50)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_periods_differ(self):
        a = clutter_echoes(2018, 0, 50)
        b = clutter_echoes(2018, 1, 50)
        assert not np.array_equal(a[0], b[0])


class TestFrameWithClutter:
    def test_frame_size(self):
        fleet = setup_flight(64, 2018)
        frame = generate_radar_frame(fleet, 2018, 0, clutter=16)
        assert frame.n == 80

    def test_clutter_marked(self):
        fleet = setup_flight(64, 2018)
        frame = generate_radar_frame(fleet, 2018, 0, clutter=16)
        assert np.count_nonzero(frame.true_id == C.NO_MATCH) == 16

    def test_negative_clutter_rejected(self):
        fleet = setup_flight(8, 2018)
        with pytest.raises(ValueError):
            generate_radar_frame(fleet, 2018, 0, clutter=-1)

    def test_clutter_with_dropout(self):
        fleet = setup_flight(64, 2018)
        frame = generate_radar_frame(fleet, 2018, 0, dropout=0.5, clutter=10)
        assert np.count_nonzero(frame.true_id == C.NO_MATCH) == 10
        assert frame.n < 74


class TestTrackingUnderClutter:
    def test_well_separated_fleet_survives_clutter(self):
        """On a sparse grid, remote clutter cannot steal correlations:
        real aircraft still track (some may drop if an echo lands inside
        their gate — but with 8 nm spacing and a 2 nm worst gate the
        probability of *systematic* failure is nil)."""
        fleet = place_grid_fleet(100)
        frame = generate_radar_frame(fleet, 2018, 0, clutter=32)
        stats = correlate(fleet, frame)
        assert stats.committed >= 95

    def test_clutter_never_commits_an_aircraft_position_wrongly(self):
        """A committed aircraft's position must come from a *true*
        report of that aircraft, never from a false echo."""
        fleet = place_grid_fleet(64)
        frame = generate_radar_frame(fleet, 2018, 0, clutter=64)
        correlate(fleet, frame)
        for radar in range(frame.n):
            p = frame.match_with[radar]
            if p >= 0 and fleet.r_match[p] == C.MATCHED_ONCE and fleet.matched_radar[p] == radar:
                # This radar's position was committed: it must be genuine
                # and must belong to exactly this aircraft.
                assert frame.true_id[radar] == p

    def test_heavy_clutter_full_schedule(self):
        sim = Simulation(96, radar_clutter=96, seed=2018)
        result = sim.run(major_cycles=1)
        assert result.total_periods == 16
        sim.fleet.validate()

    def test_all_backends_agree_under_clutter(self):
        from repro.backends.registry import resolve_backend
        from repro.core.scheduler import run_schedule

        states = []
        for name in ("reference", "cuda:gtx-880m", "ap:staran"):
            fleet = setup_flight(80, 2018)
            run_schedule(
                resolve_backend(name), fleet, major_cycles=1, radar_clutter=20
            )
            states.append(fleet)
        assert states[0].state_equal(states[1])
        assert states[0].state_equal(states[2])
