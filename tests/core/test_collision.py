"""Unit tests for Task 2 (Batcher collision detection)."""

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.collision import (
    DetectionMode,
    axis_interval_paper_abs,
    axis_interval_signed,
    conflict_row,
    detect,
    earliest_critical,
    pair_interval,
)

from ..conftest import make_two_aircraft


class TestAxisIntervalSigned:
    def test_approaching_pair(self):
        # gap 10 closing at 0.1/period with band 3: window [70, 130].
        lo, hi = axis_interval_signed(10.0, -0.1, 3.0)
        assert lo == pytest.approx(70.0)
        assert hi == pytest.approx(130.0)

    def test_receding_pair_window_in_past(self):
        lo, hi = axis_interval_signed(10.0, 0.1, 3.0)
        assert hi < 0  # overlap was in the past only

    def test_static_inside_band(self):
        lo, hi = axis_interval_signed(1.0, 0.0, 3.0)
        assert lo == -np.inf and hi == np.inf

    def test_static_outside_band(self):
        lo, hi = axis_interval_signed(5.0, 0.0, 3.0)
        assert lo > hi  # empty window

    def test_membership_property(self):
        """t in [lo, hi] <=> |gap + v t| <= band (sampled check)."""
        rng = np.random.default_rng(3)
        for _ in range(200):
            gap = rng.uniform(-20, 20)
            v = rng.uniform(-0.5, 0.5)
            lo, hi = axis_interval_signed(gap, v, 3.0)
            for t in rng.uniform(-300, 300, 8):
                inside = abs(gap + v * t) < 3.0
                in_window = lo < t < hi
                assert inside == in_window, (gap, v, t, lo, hi)


class TestAxisIntervalPaperAbs:
    def test_formula_literal(self):
        # min = (|gap|-3)/|v|, max = (|gap|+3)/|v|
        lo, hi = axis_interval_paper_abs(10.0, -0.1, 3.0)
        assert lo == pytest.approx(70.0)
        assert hi == pytest.approx(130.0)

    def test_receding_pair_reads_positive(self):
        """The paper's abs form maps past overlaps to positive times."""
        lo, hi = axis_interval_paper_abs(10.0, 0.1, 3.0)
        assert lo == pytest.approx(70.0) and hi == pytest.approx(130.0)

    def test_negative_numerator_clamps_to_zero(self):
        lo, _ = axis_interval_paper_abs(1.0, 0.2, 3.0)
        assert lo == 0.0

    def test_static_cases(self):
        lo, hi = axis_interval_paper_abs(1.0, 0.0, 3.0)
        assert lo == 0.0 and hi == np.inf
        lo, hi = axis_interval_paper_abs(9.0, 0.0, 3.0)
        assert lo > hi


class TestPairInterval:
    def test_combines_axes_with_max_min(self):
        # x window [70, 130]; y window [20, 80] -> [70, 80].
        lo, hi = pair_interval(10.0, 5.0, -0.1, -0.1, DetectionMode.SIGNED)
        assert lo == pytest.approx(70.0)
        assert hi == pytest.approx(80.0)

    def test_disjoint_axis_windows_mean_no_collision(self):
        # x window [70, 130]; y window [470, 530] -> empty.
        lo, hi = pair_interval(10.0, 50.0, -0.1, -0.1, DetectionMode.SIGNED)
        assert lo > hi


class TestDetect:
    def test_head_on_collision_flagged(self):
        fleet = make_two_aircraft(
            x0=0.0, dx0=0.05, x1=20.0, dx1=-0.05, y0=0.0, y1=0.0, dy0=0.0, dy1=0.0
        )
        stats = detect(fleet)
        assert stats.flagged_aircraft == 2
        assert fleet.col.tolist() == [1, 1]
        assert fleet.col_with.tolist() == [1, 0]
        # Gap 20 closing at 0.1/period, band 3 -> first overlap at t=170.
        assert fleet.time_till[0] == pytest.approx(170.0)
        assert fleet.time_till[1] == pytest.approx(170.0)

    def test_altitude_gate_suppresses_conflict(self):
        fleet = make_two_aircraft(alt0=10_000.0, alt1=12_000.0)
        stats = detect(fleet)
        assert stats.flagged_aircraft == 0
        assert stats.pairs_in_altitude_band == 0

    def test_altitude_gate_boundary(self):
        fleet = make_two_aircraft(alt0=10_000.0, alt1=10_999.0)
        assert detect(fleet).pairs_in_altitude_band == 2  # ordered pairs

    def test_receding_not_flagged_in_signed_mode(self):
        fleet = make_two_aircraft(
            x0=0.0, dx0=-0.05, x1=20.0, dx1=0.05  # flying apart
        )
        stats = detect(fleet, DetectionMode.SIGNED)
        assert stats.flagged_aircraft == 0

    def test_receding_flagged_in_paper_abs_mode(self):
        """The literal Eqs. (1)-(6) flag the receding pair too."""
        fleet = make_two_aircraft(x0=0.0, dx0=-0.05, x1=20.0, dx1=0.05)
        stats = detect(fleet, DetectionMode.PAPER_ABS)
        assert stats.flagged_aircraft == 2

    def test_distant_conflict_not_critical(self):
        # Gap 100 closing at 0.1/period -> overlap at t=970 > 300: a
        # conflict within the 20-minute horizon but not critical.
        fleet = make_two_aircraft(x0=0.0, dx0=0.05, x1=100.0, dx1=-0.05)
        stats = detect(fleet)
        assert stats.conflicts == 2
        assert stats.critical_conflicts == 0
        assert fleet.col.tolist() == [0, 0]
        assert np.all(fleet.time_till == C.TIME_TILL_SAFE_PERIODS)

    def test_beyond_horizon_not_a_conflict(self):
        # Gap 250 closing at 0.1/period -> t=2470 > 2400-period horizon.
        fleet = make_two_aircraft(x0=-125.0, dx0=0.05, x1=125.0, dx1=-0.05)
        stats = detect(fleet)
        assert stats.conflicts == 0

    def test_currently_overlapping_pair_is_time_zero(self):
        fleet = make_two_aircraft(x0=0.0, x1=1.0, dx0=0.01, dx1=0.01)
        detect(fleet)
        assert fleet.time_till[0] == 0.0
        assert fleet.col[0] == 1

    def test_symmetric(self):
        fleet = make_two_aircraft(x0=0.0, dx0=0.05, x1=20.0, dx1=-0.05)
        detect(fleet)
        assert fleet.col[0] == fleet.col[1]
        assert fleet.time_till[0] == fleet.time_till[1]

    def test_detect_is_idempotent(self):
        fleet = make_two_aircraft()
        detect(fleet)
        first = fleet.copy()
        detect(fleet)
        assert fleet.state_equal(first)

    def test_chunking_invariance(self):
        from repro.core.setup import setup_flight

        a = setup_flight(300, 2018)
        b = a.copy()
        sa = detect(a, chunk=512)
        sb = detect(b, chunk=7)
        assert a.state_equal(b)
        assert sa.conflicts == sb.conflicts
        assert sa.critical_conflicts == sb.critical_conflicts

    def test_pairs_checked_count(self):
        fleet = make_two_aircraft()
        assert detect(fleet).pairs_checked == 2
        from repro.core.setup import setup_flight

        f = setup_flight(10, 1)
        assert detect(f).pairs_checked == 90

    def test_critical_per_aircraft_sums(self):
        from repro.core.setup import setup_flight

        f = setup_flight(200, 2018)
        stats = detect(f)
        assert stats.critical_per_aircraft.sum() == stats.critical_conflicts


class TestConflictRow:
    def test_matches_detect(self):
        from repro.core.setup import setup_flight

        fleet = setup_flight(100, 2018)
        detect(fleet)
        for i in (0, 13, 99):
            conflict, t_eff = conflict_row(
                fleet, i, float(fleet.dx[i]), float(fleet.dy[i])
            )
            critical = conflict & (t_eff < C.TIME_TILL_SAFE_PERIODS)
            assert bool(critical.any()) == bool(fleet.col[i])

    def test_self_excluded(self):
        fleet = make_two_aircraft()
        conflict, _ = conflict_row(fleet, 0, 0.01, 0.0)
        assert not conflict[0]


class TestEarliestCritical:
    def test_returns_partner_and_time(self):
        fleet = make_two_aircraft(x0=0.0, dx0=0.05, x1=20.0, dx1=-0.05)
        hit = earliest_critical(fleet, 0, 0.05, 0.0)
        assert hit is not None
        partner, t = hit
        assert partner == 1
        assert t == pytest.approx(170.0)

    def test_none_when_clear(self):
        fleet = make_two_aircraft(x0=0.0, dx0=-0.05, x1=20.0, dx1=0.05)
        assert earliest_critical(fleet, 0, -0.05, 0.0) is None

    def test_trial_velocity_changes_answer(self):
        fleet = make_two_aircraft(x0=0.0, dx0=0.05, x1=20.0, dx1=-0.05)
        assert earliest_critical(fleet, 0, 0.05, 0.0) is not None
        # Flying away instead: clear.
        assert earliest_critical(fleet, 0, -0.05, 0.0) is None
