"""Sanity relations between the paper's constants."""

from repro.core import constants as C


def test_airfield_is_256_by_256():
    assert C.AIRFIELD_SIZE_NM == 256.0
    assert C.GRID_HALF_NM == 128.0


def test_major_cycle_is_eight_seconds():
    assert C.PERIODS_PER_MAJOR_CYCLE * C.PERIOD_SECONDS == 8.0


def test_periods_per_hour_matches_paper_divisor():
    # The paper divides nm/h velocities by 7200 to get nm/period.
    assert C.PERIODS_PER_HOUR == 7200
    assert C.PERIODS_PER_HOUR * C.PERIOD_SECONDS == 3600.0


def test_collision_band_total_is_three_nm():
    # The literal "3" of Eqs. (1)-(4): 1.5 nm per aircraft.
    assert C.COLLISION_BAND_TOTAL_NM == 3.0
    assert C.COLLISION_BAND_NM == 1.5


def test_projection_horizon_is_twenty_minutes():
    assert C.PROJECTION_HORIZON_PERIODS == 2400.0
    assert C.PROJECTION_HORIZON_PERIODS * C.PERIOD_SECONDS == 20 * 60


def test_collision_runs_in_last_period():
    assert C.COLLISION_PERIOD_INDEX == 15


def test_resolution_trial_count():
    # +-5, +-10, ..., +-30 degrees -> 12 trials.
    assert C.RESOLUTION_MAX_TRIALS == 12


def test_radar_noise_fits_initial_gate():
    # Noise must be small relative to the 0.5 nm gate half-width or
    # round-1 correlation would routinely fail.
    assert C.RADAR_NOISE_MAX_NM < C.TRACK_GATE_HALF_NM


def test_track_rounds():
    assert C.TRACK_TOTAL_ROUNDS == 3


def test_speed_band():
    assert 0 < C.SPEED_MIN_KNOTS < C.SPEED_MAX_KNOTS


def test_sentinels_are_distinct():
    assert len({C.NO_MATCH, C.DISCARDED, C.UNMATCHED, C.MATCHED_ONCE}) == 4
    assert C.MULTI_MATCHED != C.UNMATCHED != C.MATCHED_ONCE
