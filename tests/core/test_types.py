"""Unit tests for FleetState, RadarFrame and TaskTiming."""

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.types import FleetState, RadarFrame, TaskTiming, TimingBreakdown


class TestFleetState:
    def test_empty_shapes_and_defaults(self):
        f = FleetState.empty(10)
        assert f.n == 10
        assert f.x.shape == (10,)
        assert np.all(f.time_till == C.TIME_TILL_SAFE_PERIODS)
        assert np.all(f.col_with == C.NO_MATCH)
        assert np.all(f.r_match == C.UNMATCHED)

    def test_empty_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FleetState.empty(0)
        with pytest.raises(ValueError):
            FleetState.empty(-3)

    def test_copy_is_deep(self):
        f = FleetState.empty(4)
        g = f.copy()
        g.x[0] = 42.0
        assert f.x[0] == 0.0

    def test_state_equal(self):
        f = FleetState.empty(4)
        g = f.copy()
        assert f.state_equal(g)
        g.dy[2] = 1e-12
        assert not f.state_equal(g)

    def test_speeds(self):
        f = FleetState.empty(2)
        f.dx[:] = [3e-2, 0.0]
        f.dy[:] = [4e-2, 0.0]
        assert np.allclose(f.speeds_per_period(), [5e-2, 0.0])
        assert np.allclose(f.speeds_knots(), [5e-2 * 7200, 0.0])

    def test_reset_correlation(self):
        f = FleetState.empty(3)
        f.r_match[:] = C.MATCHED_ONCE
        f.matched_radar[:] = 5
        f.reset_correlation()
        assert np.all(f.r_match == C.UNMATCHED)
        assert np.all(f.matched_radar == C.NO_MATCH)

    def test_reset_collision(self):
        f = FleetState.empty(3)
        f.dx[:] = 0.5
        f.col[:] = 1
        f.time_till[:] = 10.0
        f.col_with[:] = 1
        f.batdx[:] = 99.0
        f.reset_collision()
        assert np.all(f.col == 0)
        assert np.all(f.time_till == C.TIME_TILL_SAFE_PERIODS)
        assert np.all(f.col_with == C.NO_MATCH)
        assert np.array_equal(f.batdx, f.dx)

    def test_validate_catches_out_of_bounds(self):
        f = FleetState.empty(2)
        f.x[0] = 500.0
        with pytest.raises(ValueError, match="bounding square"):
            f.validate()

    def test_validate_catches_nan(self):
        f = FleetState.empty(2)
        f.y[1] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            f.validate()


class TestRadarFrame:
    def test_empty(self):
        r = RadarFrame.empty(5)
        assert r.n == 5
        assert np.all(r.match_with == C.NO_MATCH)
        assert np.all(r.true_id == C.NO_MATCH)

    def test_copy_is_deep(self):
        r = RadarFrame.empty(3)
        s = r.copy()
        s.rx[0] = 1.0
        assert r.rx[0] == 0.0

    def test_reset_matches(self):
        r = RadarFrame.empty(3)
        r.match_with[:] = 7
        r.reset_matches()
        assert np.all(r.match_with == C.NO_MATCH)


class TestTiming:
    def test_breakdown_total(self):
        b = TimingBreakdown(compute=1.0, memory=0.5, transfer=0.25, sync=0.125, overhead=0.125)
        assert b.total == 2.0

    def test_breakdown_scaled(self):
        b = TimingBreakdown(compute=2.0, memory=1.0).scaled(0.5)
        assert b.compute == 1.0 and b.memory == 0.5

    def test_task_timing_rejects_negative(self):
        with pytest.raises(ValueError):
            TaskTiming(task="task1", platform="x", n_aircraft=1, seconds=-1.0)

    def test_meets_deadline(self):
        t = TaskTiming(task="task1", platform="x", n_aircraft=1, seconds=0.4)
        assert t.meets_deadline(0.5)
        assert not t.meets_deadline(0.3)

    def test_milliseconds(self):
        t = TaskTiming(task="task1", platform="x", n_aircraft=1, seconds=0.002)
        assert t.milliseconds == pytest.approx(2.0)
