"""Unit tests for the hard-deadline major-cycle scheduler."""

import numpy as np
import pytest

from repro.backends.base import Backend
from repro.core import constants as C
from repro.core.collision import DetectionMode
from repro.core.scheduler import run_schedule
from repro.core.setup import setup_flight
from repro.core.types import FleetState, RadarFrame, TaskTiming


class FakeBackend(Backend):
    """Backend with scripted task durations (does trivial real work)."""

    name = "fake"

    def __init__(self, task1_s: float, task23_s: float):
        self.task1_s = task1_s
        self.task23_s = task23_s
        self.task1_calls = 0
        self.task23_calls = 0

    def track_and_correlate(self, fleet: FleetState, frame: RadarFrame) -> TaskTiming:
        self.task1_calls += 1
        return TaskTiming("task1", self.name, fleet.n, self.task1_s)

    def detect_and_resolve(self, fleet, mode=DetectionMode.SIGNED) -> TaskTiming:
        self.task23_calls += 1
        return TaskTiming("task23", self.name, fleet.n, self.task23_s)


@pytest.fixture
def fleet():
    return setup_flight(32, 2018)


class TestScheduleStructure:
    def test_sixteen_periods_per_cycle(self, fleet):
        backend = FakeBackend(0.001, 0.001)
        result = run_schedule(backend, fleet, major_cycles=1)
        assert result.total_periods == 16
        assert backend.task1_calls == 16
        assert backend.task23_calls == 1

    def test_collision_runs_only_in_last_period(self, fleet):
        backend = FakeBackend(0.001, 0.001)
        result = run_schedule(backend, fleet, major_cycles=2)
        for p in result.periods:
            if p.period == C.COLLISION_PERIOD_INDEX:
                assert p.task23 is not None
            else:
                assert p.task23 is None

    def test_multiple_cycles(self, fleet):
        backend = FakeBackend(0.001, 0.001)
        result = run_schedule(backend, fleet, major_cycles=3)
        assert result.total_periods == 48
        assert backend.task23_calls == 3

    def test_rejects_zero_cycles(self, fleet):
        with pytest.raises(ValueError):
            run_schedule(FakeBackend(0.001, 0.001), fleet, major_cycles=0)


class TestDeadlineAccounting:
    def test_all_meet(self, fleet):
        result = run_schedule(FakeBackend(0.01, 0.01), fleet)
        assert result.missed_deadlines == 0
        assert result.miss_rate == 0.0
        assert all(p.slack > 0 for p in result.periods)

    def test_task1_overrun_misses_every_period(self, fleet):
        result = run_schedule(FakeBackend(0.6, 0.01), fleet)
        assert result.missed_deadlines == 16
        assert result.miss_rate == 1.0

    def test_task23_overrun_misses_only_collision_period(self, fleet):
        result = run_schedule(FakeBackend(0.01, 0.6), fleet)
        assert result.missed_deadlines == 1
        missed = [p for p in result.periods if p.deadline_missed]
        assert missed[0].period == C.COLLISION_PERIOD_INDEX
        assert not missed[0].task23_skipped  # it ran, just overran

    def test_task23_skipped_when_task1_fills_period(self, fleet):
        result = run_schedule(FakeBackend(0.55, 0.01), fleet)
        collision_periods = [
            p for p in result.periods if p.period == C.COLLISION_PERIOD_INDEX
        ]
        assert all(p.task23_skipped for p in collision_periods)
        assert all(p.task23 is None for p in collision_periods)
        assert result.skipped_tasks == 1

    def test_combined_overrun(self, fleet):
        # 0.3 + 0.3 > 0.5 only in the collision period.
        result = run_schedule(FakeBackend(0.3, 0.3), fleet)
        assert result.missed_deadlines == 1
        assert result.skipped_tasks == 0

    def test_exact_budget_meets(self, fleet):
        result = run_schedule(FakeBackend(C.PERIOD_SECONDS, 0.0), fleet)
        # time_used == budget is not a miss in non-collision periods, but
        # the collision period skips task23 (no time left).
        misses = [p for p in result.periods if p.deadline_missed]
        assert all(p.period == C.COLLISION_PERIOD_INDEX for p in misses)


class TestSummary:
    def test_summary_fields(self, fleet):
        result = run_schedule(FakeBackend(0.01, 0.02), fleet)
        s = result.summary()
        assert s["periods"] == 16
        assert s["missed_deadlines"] == 0
        assert s["task1_mean_s"] == pytest.approx(0.01)
        assert s["task23_mean_s"] == pytest.approx(0.02)
        assert s["worst_period_s"] == pytest.approx(0.03)
        assert 0 < s["mean_utilization"] < 1

    def test_task_time_arrays(self, fleet):
        result = run_schedule(FakeBackend(0.01, 0.02), fleet)
        assert result.task1_times().shape == (16,)
        assert result.task23_times().shape == (1,)


class TestWorldEvolution:
    def test_fleet_actually_flies(self, fleet):
        before = fleet.copy()
        run_schedule(FakeBackend(0.001, 0.001), fleet, major_cycles=1)
        # FakeBackend does no tracking commits, so positions are frozen —
        # use the reference backend to confirm the world moves.
        from repro.backends.reference import ReferenceBackend

        fleet2 = setup_flight(32, 2018)
        start = fleet2.copy()
        run_schedule(ReferenceBackend(), fleet2, major_cycles=1)
        assert not np.array_equal(fleet2.x, start.x)
