"""Unit tests for the functional-trace artifact (repro.core.trace)."""

import json

import numpy as np
import pytest

from repro.core.collision import DetectionMode
from repro.core.radar import generate_radar_frame
from repro.core.resolution import detect_and_resolve
from repro.core.setup import setup_flight
from repro.core.trace import (
    TRACE_SCHEMA_VERSION,
    FunctionalTrace,
    compute_trace,
    trace_key,
)
from repro.core.tracking import correlate


class TestComputeTrace:
    def test_records_one_period_record_per_period(self):
        trace = compute_trace(96, periods=3)
        assert len(trace.period_records) == 3
        assert trace.collision is not None

    def test_rejects_zero_periods(self):
        with pytest.raises(ValueError):
            compute_trace(96, periods=0)

    def test_matches_its_own_parameters_only(self):
        trace = compute_trace(96, seed=2018, periods=2, mode=DetectionMode.SIGNED)
        assert trace.matches(n=96, seed=2018, periods=2, mode=DetectionMode.SIGNED)
        assert trace.matches(n=96, seed=2018, periods=2, mode="signed")
        for wrong in (
            dict(n=192, seed=2018, periods=2, mode=DetectionMode.SIGNED),
            dict(n=96, seed=1, periods=2, mode=DetectionMode.SIGNED),
            dict(n=96, seed=2018, periods=3, mode=DetectionMode.SIGNED),
            dict(n=96, seed=2018, periods=2, mode=DetectionMode.PAPER_ABS),
        ):
            assert not trace.matches(**wrong)

    def test_trace_mirrors_the_measurement_protocol(self):
        """The recorded artifacts equal a hand-run of the same protocol."""
        trace = compute_trace(96, seed=2018, periods=2)
        fleet = setup_flight(96, 2018)
        for period, rec in enumerate(trace.period_records):
            frame = generate_radar_frame(fleet, 2018, period)
            stats = correlate(fleet, frame)
            assert rec.n_aircraft == fleet.n
            assert rec.frame_n == frame.n
            assert rec.stats.rounds_executed == stats.rounds_executed
            assert rec.stats.candidate_pairs == stats.candidate_pairs
            assert rec.stats.matched == stats.matched
            np.testing.assert_array_equal(rec.match_with, frame.match_with)
            np.testing.assert_array_equal(rec.r_match, fleet.r_match)
            np.testing.assert_array_equal(rec.matched_radar, fleet.matched_radar)
        det, res = detect_and_resolve(fleet, DetectionMode.SIGNED)
        assert trace.collision.det.pairs_checked == det.pairs_checked
        assert trace.collision.det.conflicts == det.conflicts
        assert trace.collision.res.trials_evaluated == res.trials_evaluated
        np.testing.assert_array_equal(trace.collision.alt, fleet.alt)


class TestRoundTrip:
    def test_json_round_trip_is_exact(self):
        trace = compute_trace(128, seed=2018, periods=2)
        payload = json.loads(json.dumps(trace.to_dict()))
        back = FunctionalTrace.from_dict(payload)
        assert back.to_dict() == trace.to_dict()
        # array dtypes survive the round trip (backends index with these)
        rec = back.period_records[0]
        assert rec.match_with.dtype == np.int64
        assert rec.r_match.dtype == np.int8
        assert rec.matched_radar.dtype == np.int64
        assert back.collision.alt.dtype == np.float64

    def test_from_dict_rejects_unknown_schema(self):
        trace = compute_trace(64, periods=1)
        payload = trace.to_dict()
        payload["schema"] = TRACE_SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            FunctionalTrace.from_dict(payload)


class TestTraceKey:
    def test_key_is_stable_and_matches_instance_key(self):
        trace = compute_trace(96, seed=2018, periods=2)
        k = trace_key(n=96, seed=2018, periods=2, mode=DetectionMode.SIGNED)
        assert trace.key() == k
        assert len(k) == 64  # sha256 hex

    def test_key_separates_every_parameter(self):
        base = dict(n=96, seed=2018, periods=2, mode=DetectionMode.SIGNED)
        keys = {trace_key(**base)}
        for change in (
            dict(base, n=192),
            dict(base, seed=1),
            dict(base, periods=3),
            dict(base, mode=DetectionMode.PAPER_ABS),
            dict(base, dropout=0.1),
            dict(base, clutter=4),
        ):
            keys.add(trace_key(**change))
        assert len(keys) == 7
