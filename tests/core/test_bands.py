"""Exactness tests for the vectorized band counting (repro.core.bands).

The module's contract is bit-for-bit agreement with the brute-force
float64 predicate ``|v - t| < sep`` — no tolerance — so every test here
compares against the naive tensor formulation directly, including values
placed within a few ulps of the band boundary.
"""

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.bands import band_bounds, group_band_pass_counts


def brute_counts(lane_values, lane_valid, targets, sep):
    """The naive (groups, width, n) tensor the module must reproduce."""
    hit = np.abs(lane_values[..., None] - targets[None, None, :]) < sep
    hit &= lane_valid[..., None]
    return hit.any(axis=1).sum(axis=1).astype(np.int64)


class TestBandBounds:
    def test_bounds_are_exact_band_edges(self):
        rng = np.random.default_rng(7)
        v = rng.uniform(0.0, 40_000.0, size=64)
        sep = float(C.ALTITUDE_SEPARATION_FT)
        lo, hi = band_bounds(v, sep)
        # the returned edges satisfy the predicate...
        assert np.all(np.abs(v - lo) < sep)
        assert np.all(np.abs(v - hi) < sep)
        # ...and the adjacent floats just outside do not.
        below = np.nextafter(lo, -np.inf)
        above = np.nextafter(hi, np.inf)
        assert not np.any(np.abs(v - below) < sep)
        assert not np.any(np.abs(v - above) < sep)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            band_bounds(np.array([1.0]), 0.0)
        with pytest.raises(ValueError):
            band_bounds(np.array([1.0]), np.inf)
        with pytest.raises(ValueError):
            band_bounds(np.array([np.nan]), 1.0)


class TestGroupCounts:
    @pytest.mark.parametrize("width", [8, 16, 32])
    def test_matches_brute_force_on_random_fleets(self, width):
        rng = np.random.default_rng(2018)
        sep = float(C.ALTITUDE_SEPARATION_FT)
        for trial in range(25):
            n = int(rng.integers(1, 200))
            n_groups = -(-n // width)
            flat = rng.uniform(0.0, 40_000.0, size=n_groups * width)
            valid = (np.arange(n_groups * width) < n).reshape(n_groups, width)
            lanes = flat.reshape(n_groups, width)
            targets = lanes.ravel()[valid.ravel()].copy()
            got = group_band_pass_counts(lanes, valid, targets, sep)
            np.testing.assert_array_equal(
                got, brute_counts(lanes, valid, targets, sep)
            )

    def test_adversarial_boundary_values(self):
        """Targets a handful of ulps from the band edge must agree too."""
        rng = np.random.default_rng(5)
        sep = 1000.0
        base = rng.uniform(0.0, 40_000.0, size=16)
        targets = [base, base + sep, base - sep]
        for k in range(1, 4):
            stepped_hi = base + sep
            stepped_lo = base - sep
            for _ in range(k):
                stepped_hi = np.nextafter(stepped_hi, -np.inf)
                stepped_lo = np.nextafter(stepped_lo, np.inf)
            targets.extend([stepped_hi, stepped_lo])
        targets = np.concatenate(targets)
        lanes = base.reshape(2, 8)
        valid = np.ones_like(lanes, dtype=bool)
        got = group_band_pass_counts(lanes, valid, targets, sep)
        np.testing.assert_array_equal(
            got, brute_counts(lanes, valid, targets, sep)
        )

    @pytest.mark.parametrize("sentinel", [0.0, np.inf, 12345.6789])
    def test_invalid_lane_padding_never_contributes(self, sentinel):
        lanes = np.array([[10_000.0, sentinel], [sentinel, sentinel]])
        valid = np.array([[True, False], [False, False]])
        targets = np.array([10_000.0, sentinel if np.isfinite(sentinel) else 0.0])
        got = group_band_pass_counts(lanes, valid, targets, 1000.0)
        np.testing.assert_array_equal(
            got, brute_counts(lanes, valid, targets, 1000.0)
        )
        assert got[1] == 0  # all-invalid group counts nothing

    def test_duplicate_targets_count_individually(self):
        lanes = np.array([[5_000.0]])
        valid = np.ones_like(lanes, dtype=bool)
        targets = np.array([5_000.0, 5_000.0, 5_000.0, 9_999.0])
        got = group_band_pass_counts(lanes, valid, targets, 1000.0)
        np.testing.assert_array_equal(
            got, brute_counts(lanes, valid, targets, 1000.0)
        )
        assert got[0] == 3

    def test_empty_shapes(self):
        empty = group_band_pass_counts(
            np.empty((0, 8)), np.empty((0, 8), dtype=bool), np.array([1.0]), 10.0
        )
        assert empty.shape == (0,)
        zero_targets = group_band_pass_counts(
            np.zeros((2, 8)), np.ones((2, 8), dtype=bool), np.empty(0), 10.0
        )
        np.testing.assert_array_equal(zero_targets, np.zeros(2, dtype=np.int64))

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            group_band_pass_counts(
                np.zeros((2, 8)), np.ones((2, 4), dtype=bool), np.array([1.0]), 10.0
            )
