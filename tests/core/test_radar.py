"""Unit tests for GenerateRadarData."""

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.radar import (
    fourth_reversal_permutation,
    generate_radar_frame,
    radar_noise,
)
from repro.core.setup import setup_flight


class TestRadarNoise:
    def test_bounds(self):
        nx, ny = radar_noise(2018, np.arange(10_000), period=4)
        assert np.all(np.abs(nx) <= C.RADAR_NOISE_MAX_NM)
        assert np.all(np.abs(ny) <= C.RADAR_NOISE_MAX_NM)

    def test_periods_decorrelated(self):
        ids = np.arange(100)
        a, _ = radar_noise(2018, ids, period=0)
        b, _ = radar_noise(2018, ids, period=1)
        assert not np.array_equal(a, b)

    def test_deterministic(self):
        ids = np.arange(100)
        a, ay = radar_noise(2018, ids, period=3)
        b, by = radar_noise(2018, ids, period=3)
        assert np.array_equal(a, b) and np.array_equal(ay, by)

    def test_signed_noise(self):
        nx, ny = radar_noise(2018, np.arange(10_000), period=0)
        assert np.any(nx > 0) and np.any(nx < 0)
        assert np.any(ny > 0) and np.any(ny < 0)


class TestFourthReversal:
    def test_is_permutation(self):
        for n in (0, 1, 3, 4, 7, 8, 100, 101, 102, 103):
            perm = fourth_reversal_permutation(n)
            assert sorted(perm.tolist()) == list(range(n))

    def test_exact_layout(self):
        # n=8: fourths of 2: [1,0, 3,2, 5,4, 7,6]
        assert fourth_reversal_permutation(8).tolist() == [1, 0, 3, 2, 5, 4, 7, 6]

    def test_remainder_goes_to_last_fourth(self):
        # n=10: quarter=2 -> [1,0, 3,2, 5,4, 9,8,7,6]
        assert fourth_reversal_permutation(10).tolist() == [
            1, 0, 3, 2, 5, 4, 9, 8, 7, 6,
        ]

    def test_involution(self):
        """Reversing each fourth twice is the identity."""
        perm = fourth_reversal_permutation(101)
        assert np.array_equal(perm[perm], np.arange(101))

    def test_actually_shuffles(self):
        perm = fourth_reversal_permutation(96)
        assert not np.array_equal(perm, np.arange(96))

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            fourth_reversal_permutation(-1)


class TestGenerateRadarFrame:
    def test_does_not_mutate_fleet(self):
        fleet = setup_flight(64, 2018)
        before = fleet.copy()
        generate_radar_frame(fleet, 2018, 0)
        assert fleet.state_equal(before)

    def test_reports_near_expected_positions(self):
        fleet = setup_flight(64, 2018)
        frame = generate_radar_frame(fleet, 2018, 0)
        ex = fleet.x + fleet.dx
        ey = fleet.y + fleet.dy
        # Invert the shuffle via true_id and check the noise bound.
        assert np.all(np.abs(frame.rx - ex[frame.true_id]) <= C.RADAR_NOISE_MAX_NM)
        assert np.all(np.abs(frame.ry - ey[frame.true_id]) <= C.RADAR_NOISE_MAX_NM)

    def test_true_ids_are_a_permutation(self):
        fleet = setup_flight(100, 2018)
        frame = generate_radar_frame(fleet, 2018, 0)
        assert sorted(frame.true_id.tolist()) == list(range(100))

    def test_shuffle_breaks_identity_order(self):
        fleet = setup_flight(96, 2018)
        frame = generate_radar_frame(fleet, 2018, 0)
        assert not np.array_equal(frame.true_id, np.arange(96))

    def test_deterministic(self):
        fleet = setup_flight(64, 2018)
        a = generate_radar_frame(fleet, 2018, 5)
        b = generate_radar_frame(fleet, 2018, 5)
        assert np.array_equal(a.rx, b.rx)
        assert np.array_equal(a.true_id, b.true_id)

    def test_periods_differ(self):
        fleet = setup_flight(64, 2018)
        a = generate_radar_frame(fleet, 2018, 0)
        b = generate_radar_frame(fleet, 2018, 1)
        assert not np.array_equal(a.rx, b.rx)

    def test_dropout(self):
        fleet = setup_flight(1000, 2018)
        frame = generate_radar_frame(fleet, 2018, 0, dropout=0.3)
        assert 0 < frame.n < 1000
        # Surviving reports still identify distinct aircraft.
        assert np.unique(frame.true_id).size == frame.n

    def test_dropout_validation(self):
        fleet = setup_flight(10, 2018)
        with pytest.raises(ValueError):
            generate_radar_frame(fleet, 2018, 0, dropout=1.0)
        with pytest.raises(ValueError):
            generate_radar_frame(fleet, 2018, 0, dropout=-0.1)

    def test_extreme_dropout_keeps_one_report(self):
        fleet = setup_flight(3, 2018)
        frame = generate_radar_frame(fleet, 2018, 0, dropout=0.999999)
        assert frame.n >= 1
