"""Unit tests for the geometric helpers."""

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.geometry import (
    advance,
    inside_gate,
    project,
    rotate_velocity,
    trial_angle_deg,
    wraparound,
)


class TestRotateVelocity:
    def test_ninety_degrees(self):
        dx, dy = rotate_velocity(1.0, 0.0, 90.0)
        assert dx == pytest.approx(0.0, abs=1e-12)
        assert dy == pytest.approx(1.0)

    def test_preserves_speed(self):
        rng = np.random.default_rng(1)
        vx, vy = rng.normal(size=100), rng.normal(size=100)
        rx, ry = rotate_velocity(vx, vy, 37.0)
        assert np.allclose(np.hypot(rx, ry), np.hypot(vx, vy))

    def test_inverse_rotation(self):
        rx, ry = rotate_velocity(*rotate_velocity(0.3, -0.7, 25.0), -25.0)
        assert rx == pytest.approx(0.3)
        assert ry == pytest.approx(-0.7)

    def test_zero_angle_identity(self):
        rx, ry = rotate_velocity(2.0, 3.0, 0.0)
        assert rx == 2.0 and ry == 3.0


class TestAdvanceProject:
    def test_advance_one_period(self):
        x, y = advance(1.0, 2.0, 0.5, -0.5)
        assert x == 1.5 and y == 1.5

    def test_advance_multiple_periods(self):
        x, y = advance(0.0, 0.0, 0.1, 0.2, periods=10)
        assert x == pytest.approx(1.0) and y == pytest.approx(2.0)

    def test_project_default_horizon(self):
        x, y = project(0.0, 0.0, 0.01, 0.0)
        assert x == pytest.approx(0.01 * C.PROJECTION_HORIZON_PERIODS)


class TestWraparound:
    def test_inside_untouched(self):
        x, y = wraparound(np.array([10.0]), np.array([-50.0]))
        assert x[0] == 10.0 and y[0] == -50.0

    def test_mirrors_both_coordinates(self):
        x, y = wraparound(np.array([130.0]), np.array([20.0]))
        assert x[0] == -128.0  # mirrored to -130, clipped to the boundary
        assert y[0] == -20.0

    def test_exit_reenters_in_bounds(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-200, 200, 1000)
        y = rng.uniform(-200, 200, 1000)
        nx, ny = wraparound(x, y)
        assert np.all(np.abs(nx) <= C.GRID_HALF_NM)
        assert np.all(np.abs(ny) <= C.GRID_HALF_NM)

    def test_heading_preserved_semantics(self):
        """Mirroring both coordinates keeps the exit heading usable: an
        aircraft leaving the NE corner re-enters at the SW corner."""
        x, y = wraparound(np.array([129.0]), np.array([127.0]))
        assert x[0] == -128.0  # mirrored then clipped to the boundary
        assert y[0] == -127.0


class TestInsideGate:
    def test_strict_inequality(self):
        assert not inside_gate(0.0, 0.0, 0.5, 0.0, 0.5)
        assert inside_gate(0.0, 0.0, 0.499, 0.0, 0.5)

    def test_both_axes_required(self):
        assert not inside_gate(0.0, 0.0, 0.1, 0.9, 0.5)
        assert not inside_gate(0.0, 0.0, 0.9, 0.1, 0.5)
        assert inside_gate(0.0, 0.0, 0.1, 0.1, 0.5)

    def test_vectorised(self):
        hits = inside_gate(
            np.zeros(3), np.zeros(3), np.array([0.1, 0.6, -0.2]), np.zeros(3), 0.5
        )
        assert hits.tolist() == [True, False, True]


class TestTrialAngle:
    def test_alternating_growing_sequence(self):
        angles = [trial_angle_deg(a) for a in range(12)]
        assert angles == [5, -5, 10, -10, 15, -15, 20, -20, 25, -25, 30, -30]

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            trial_angle_deg(12)
        with pytest.raises(ValueError):
            trial_angle_deg(-1)
