"""Unit tests for Task 1 (tracking & correlation)."""

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.radar import generate_radar_frame
from repro.core.setup import setup_flight
from repro.core.tracking import compute_expected, correlate
from repro.core.types import FleetState, RadarFrame

from ..conftest import place_grid_fleet


def frame_from(points, true_ids=None) -> RadarFrame:
    """Build a radar frame from explicit (rx, ry) points."""
    frame = RadarFrame.empty(len(points))
    for i, (rx, ry) in enumerate(points):
        frame.rx[i] = rx
        frame.ry[i] = ry
    if true_ids is not None:
        frame.true_id[:] = true_ids
    return frame


class TestComputeExpected:
    def test_dead_reckoning(self):
        f = FleetState.empty(2)
        f.x[:] = [1.0, -2.0]
        f.y[:] = [0.0, 3.0]
        f.dx[:] = [0.5, 0.0]
        f.dy[:] = [0.0, -0.5]
        compute_expected(f)
        assert f.expected_x.tolist() == [1.5, -2.0]
        assert f.expected_y.tolist() == [0.0, 2.5]


class TestPerfectCorrelation:
    def test_well_separated_fleet_fully_matched(self):
        fleet = place_grid_fleet(100)
        frame = generate_radar_frame(fleet, 2018, 0)
        stats = correlate(fleet, frame)
        assert stats.committed == 100
        assert stats.coasted == 0
        assert stats.rounds_executed == 1
        assert stats.dropped_aircraft == 0
        assert stats.discarded_radars == 0

    def test_positions_updated_to_radar(self):
        fleet = place_grid_fleet(50)
        frame = generate_radar_frame(fleet, 2018, 0)
        rx_by_true = np.empty(50)
        ry_by_true = np.empty(50)
        rx_by_true[frame.true_id] = frame.rx
        ry_by_true[frame.true_id] = frame.ry
        correlate(fleet, frame)
        assert np.allclose(fleet.x, rx_by_true)
        assert np.allclose(fleet.y, ry_by_true)

    def test_match_bookkeeping_consistent(self):
        fleet = place_grid_fleet(60)
        frame = generate_radar_frame(fleet, 2018, 0)
        correlate(fleet, frame)
        matched = frame.match_with >= 0
        # radar -> aircraft -> radar round trip.
        planes = frame.match_with[matched]
        assert np.array_equal(
            fleet.matched_radar[planes], np.nonzero(matched)[0]
        )
        assert np.all(fleet.r_match[planes] == C.MATCHED_ONCE)


class TestAmbiguityRules:
    def make_single_aircraft(self):
        f = FleetState.empty(1)
        f.x[0] = 0.0
        f.y[0] = 0.0
        # Stationary so the expected position stays at the origin.
        return f

    def test_aircraft_seen_by_two_radars_is_dropped(self):
        fleet = self.make_single_aircraft()
        frame = frame_from([(0.1, 0.0), (-0.1, 0.0)])
        stats = correlate(fleet, frame)
        assert stats.dropped_aircraft == 1
        assert fleet.r_match[0] == C.MULTI_MATCHED
        # Aircraft keeps its expected position (origin).
        assert fleet.x[0] == 0.0 and fleet.y[0] == 0.0
        assert stats.committed == 0

    def test_radar_seeing_two_aircraft_is_discarded(self):
        f = FleetState.empty(2)
        f.x[:] = [0.0, 0.4]
        f.y[:] = [0.0, 0.0]
        frame = frame_from([(0.2, 0.0)])  # inside both 1x1 gates
        stats = correlate(f, frame)
        assert stats.discarded_radars == 1
        assert frame.match_with[0] == C.DISCARDED
        # Neither aircraft gets the radar position.
        assert stats.committed == 0

    def test_serialization_order_first_radar_wins(self):
        """Radar 0 matches the aircraft first; radar 1 then drops it."""
        fleet = self.make_single_aircraft()
        frame = frame_from([(0.1, 0.1), (0.2, -0.1)])
        correlate(fleet, frame)
        # Radar 0 recorded the match before the aircraft was dropped.
        assert frame.match_with[0] == 0
        assert frame.match_with[1] == C.NO_MATCH
        assert fleet.r_match[0] == C.MULTI_MATCHED


class TestGateDoubling:
    def test_second_round_catches_moderate_noise(self):
        """A report outside the 1x1 gate but inside 2x2 matches in round 2."""
        f = FleetState.empty(1)
        f.x[0] = 0.0
        frame = frame_from([(0.7, 0.0)])  # outside 0.5, inside 1.0
        stats = correlate(f, frame)
        assert stats.rounds_executed >= 2
        assert stats.committed == 1
        assert f.x[0] == pytest.approx(0.7)

    def test_third_round_gate_is_two_nm(self):
        f = FleetState.empty(1)
        f.x[0] = 0.0
        frame = frame_from([(1.5, 0.0)])  # outside 1.0, inside 2.0
        stats = correlate(f, frame)
        assert stats.rounds_executed == 3
        assert stats.committed == 1

    def test_beyond_final_gate_stays_unmatched(self):
        f = FleetState.empty(1)
        f.x[0] = 0.0
        f.dx[0] = 0.25
        frame = frame_from([(10.0, 0.0)])
        stats = correlate(f, frame)
        assert stats.committed == 0
        assert stats.coasted == 1
        assert frame.match_with[0] == C.NO_MATCH
        # Aircraft coasts to its expected position.
        assert f.x[0] == pytest.approx(0.25)

    def test_matched_aircraft_not_reconsidered_in_later_rounds(self):
        """Round 2's bigger gate must not multi-match round-1 pairs."""
        f = FleetState.empty(2)
        f.x[:] = [0.0, 1.2]
        frame = frame_from([(0.1, 0.0), (1.25, 0.0)])
        stats = correlate(f, frame)
        assert stats.committed == 2
        assert stats.dropped_aircraft == 0

    def test_rounds_stop_early_when_all_radars_matched(self):
        fleet = place_grid_fleet(16)
        frame = generate_radar_frame(fleet, 2018, 0)
        stats = correlate(fleet, frame)
        assert stats.rounds_executed == 1
        assert len(stats.candidate_pairs) == 1


class TestStatsConsistency:
    def test_candidate_counts_match_bincount(self):
        fleet = setup_flight(128, 2018)
        frame = generate_radar_frame(fleet, 2018, 0)
        stats = correlate(fleet, frame)
        for r in range(stats.rounds_executed):
            assert stats.round_candidates_per_radar[r].sum() == stats.candidate_pairs[r]

    def test_matched_plus_coasted_is_fleet(self):
        fleet = setup_flight(256, 2018)
        frame = generate_radar_frame(fleet, 2018, 0)
        stats = correlate(fleet, frame)
        assert stats.committed + stats.coasted == fleet.n

    def test_round_one_covers_all(self):
        fleet = setup_flight(64, 2018)
        frame = generate_radar_frame(fleet, 2018, 0)
        stats = correlate(fleet, frame)
        assert stats.round_radar_ids[0].shape[0] == frame.n
        assert stats.round_active_planes[0] == fleet.n

    def test_positions_stay_in_bounds_after_commit(self):
        fleet = setup_flight(512, 2018)
        for period in range(4):
            frame = generate_radar_frame(fleet, 2018, period)
            correlate(fleet, frame)
            fleet.validate()
