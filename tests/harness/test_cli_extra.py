"""CLI tests for the report subcommand, --plot flag and extension ids."""

import json

import pytest

from repro.harness.cli import main


class TestReportCommand:
    def test_report_subset_to_file(self, capsys, tmp_path):
        out_path = tmp_path / "r.json"
        assert main(["report", "--only", "tbl-determinism", "--out", str(out_path)]) == 0
        text = capsys.readouterr().out
        assert "reproduction report" in text
        data = json.loads(out_path.read_text())
        assert list(data["experiments"]) == ["tbl-determinism"]

    def test_report_stdout_only(self, capsys):
        assert main(["report", "--only", "abl-fused"]) == 0
        assert "abl-fused" in capsys.readouterr().out


class TestPlotFlag:
    def test_plot_appends_chart(self, capsys):
        assert main(["fig5", "--ns", "96", "192", "288", "480", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "(aircraft)" in out  # the chart's x axis label
        assert "o=cuda:geforce-9800-gt" in out

    def test_plot_ignored_for_tables(self, capsys):
        assert main(["tbl-determinism", "--n", "96", "--repeats", "2", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "(aircraft)" not in out


class TestExtensionCommands:
    def test_ext_vector_runs(self, capsys):
        assert main(["ext-vector", "--ns", "96", "192", "288", "480"]) == 0
        out = capsys.readouterr().out
        assert "vector:xeon-phi-7250" in out

    def test_ext_viability_runs(self, capsys):
        assert main(["ext-viability", "--ns", "96"]) == 0
        out = capsys.readouterr().out
        assert "ext-viability" in out
        assert "terrain" in out
