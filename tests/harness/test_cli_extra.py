"""CLI tests for the report subcommand, --plot flag and extension ids."""

import json

import pytest

from repro.harness.cli import main


class TestReportCommand:
    def test_report_subset_to_file(self, capsys, tmp_path):
        out_path = tmp_path / "r.json"
        assert main(["report", "--only", "tbl-determinism", "--out", str(out_path)]) == 0
        text = capsys.readouterr().out
        assert "reproduction report" in text
        data = json.loads(out_path.read_text())
        assert list(data["experiments"]) == ["tbl-determinism"]

    def test_report_stdout_only(self, capsys):
        assert main(["report", "--only", "abl-fused"]) == 0
        assert "abl-fused" in capsys.readouterr().out


class TestPlotFlag:
    def test_plot_appends_chart(self, capsys):
        assert main(["fig5", "--ns", "96", "192", "288", "480", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "(aircraft)" in out  # the chart's x axis label
        assert "o=cuda:geforce-9800-gt" in out

    def test_plot_ignored_for_tables(self, capsys):
        assert main(["tbl-determinism", "--n", "96", "--repeats", "2", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "(aircraft)" not in out


class TestExtensionCommands:
    def test_ext_vector_runs(self, capsys):
        assert main(["ext-vector", "--ns", "96", "192", "288", "480"]) == 0
        out = capsys.readouterr().out
        assert "vector:xeon-phi-7250" in out

    def test_ext_viability_runs(self, capsys):
        assert main(["ext-viability", "--ns", "96"]) == 0
        out = capsys.readouterr().out
        assert "ext-viability" in out
        assert "terrain" in out


class TestBenchCommand:
    @pytest.fixture(autouse=True)
    def _fresh_trace_memo(self):
        """The disk-tier tests below assert store traffic; a memo warmed
        by earlier tests in this process would satisfy lookups before
        the store is ever consulted."""
        from repro.harness.sweep import _TRACE_MEMO

        _TRACE_MEMO.clear()
        yield
        _TRACE_MEMO.clear()

    def test_bench_writes_record_and_passes(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_test.json"
        rc = main([
            "bench", "--ns", "64", "96", "--periods", "1",
            "--platforms", "reference", "ap:staran",
            "--out", str(out_path),
        ])
        assert rc == 0
        data = json.loads(out_path.read_text())
        assert data["equivalent"] is True
        assert "speedup" in capsys.readouterr().out

    def test_bench_baseline_gate(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_test.json"
        args = [
            "bench", "--ns", "64", "96", "--periods", "1",
            "--platforms", "reference", "ap:staran",
            "--out", str(out_path),
        ]
        assert main(args) == 0
        baseline = json.loads(out_path.read_text())

        # an impossible baseline speedup must fail the gate...
        baseline["speedup"]["cold"] = 1e9
        strict = tmp_path / "strict.json"
        strict.write_text(json.dumps(baseline))
        rc = main(args + ["--baseline", str(strict), "--max-regression", "0.25"])
        assert rc == 1
        assert "regressed" in capsys.readouterr().err

        # ...and a trivially low one must pass.
        baseline["speedup"]["cold"] = 1e-9
        loose = tmp_path / "loose.json"
        loose.write_text(json.dumps(baseline))
        assert main(args + ["--baseline", str(loose)]) == 0

    def test_report_accepts_no_trace_replay(self, tmp_path):
        on_path = tmp_path / "on.json"
        off_path = tmp_path / "off.json"
        assert main(["report", "--only", "fig5", "--out", str(on_path)]) == 0
        assert main([
            "report", "--only", "fig5", "--no-trace-replay",
            "--out", str(off_path),
        ]) == 0
        assert json.loads(on_path.read_text()) == json.loads(off_path.read_text())

    def test_report_cache_dir_populates_trace_tier(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main([
            "report", "--only", "fig5", "--cache-dir", str(cache_dir),
        ]) == 0
        assert (cache_dir / "traces").is_dir()

    def test_cache_stats_and_clear_cover_trace_tier(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main([
            "report", "--only", "fig5", "--cache-dir", str(cache_dir),
        ]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        assert "trace tier:" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "stored traces" in out
        assert not (cache_dir / "traces").exists()


class TestQuarantineSummary:
    """The integrity summary on stderr when cached entries rot on disk."""

    def test_corrupt_cache_entries_are_reported_on_stderr(
        self, capsys, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        args = ["report", "--only", "abl-fused", "--cache-dir", str(cache_dir)]
        assert main(args) == 0
        capsys.readouterr()

        # Rot two result entries: each read is a quarantined miss and
        # the run ends with the integrity summary on stderr.
        result_entries = sorted((cache_dir / "v2").rglob("*.json"))
        assert len(result_entries) >= 2
        result_entries[0].write_text("{not json", encoding="utf-8")
        result_entries[1].write_text("{not json", encoding="utf-8")

        assert main(args) == 0
        err = capsys.readouterr().err
        assert (
            f"integrity: 2 corrupt entries quarantined under"
            f" {cache_dir}/quarantine" in err
        )
        assert (cache_dir / "quarantine").exists()

    def test_clean_cache_prints_no_integrity_line(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        args = ["report", "--only", "abl-fused", "--cache-dir", str(cache_dir)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        err = capsys.readouterr().err
        assert "integrity:" not in err
        assert "cache" in err  # the hit/miss summary still prints
