"""Unit tests for the scripted traffic scenarios."""

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.collision import detect
from repro.extended.approach import Runway, sequence_approach
from repro.harness.workloads import (
    arrival_stream,
    crossing_streams,
    enroute,
    holding_stack,
    terminal_area,
)


class TestEnroute:
    def test_is_setup_flight(self):
        from repro.core.setup import setup_flight

        assert enroute(64, 7).state_equal(setup_flight(64, 7))


class TestCrossingStreams:
    def test_geometry(self):
        fleet = crossing_streams(10)
        assert fleet.n == 20
        # Eastbound along y=0, northbound along x=0.
        assert np.all(fleet.y[:10] == 0.0)
        assert np.all(fleet.x[10:] == 0.0)
        assert np.all(fleet.dx[:10] > 0) and np.all(fleet.dy[:10] == 0)
        assert np.all(fleet.dy[10:] > 0) and np.all(fleet.dx[10:] == 0)

    def test_conflicts_are_dense(self):
        fleet = crossing_streams(16)
        stats = detect(fleet)
        # Same level, crossing paths: detection must flag a lot of them.
        assert stats.critical_conflicts > 0
        assert stats.flagged_aircraft >= 4

    def test_same_flight_level(self):
        fleet = crossing_streams(8, altitude_ft=35_000.0)
        assert np.all(np.abs(fleet.alt - 35_000.0) <= 50.0)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            crossing_streams(1000, in_trail_nm=6.0)
        with pytest.raises(ValueError):
            crossing_streams(0)

    def test_deterministic(self):
        assert crossing_streams(6).state_equal(crossing_streams(6))


class TestHoldingStack:
    def test_clean_stack_has_no_critical_conflicts(self):
        fleet = holding_stack(24)
        stats = detect(fleet)
        assert stats.critical_conflicts == 0

    def test_level_spacing_at_gate_threshold(self):
        fleet = holding_stack(48)
        levels = np.unique(fleet.alt)
        gaps = np.diff(np.sort(levels))
        assert np.all(gaps >= C.ALTITUDE_SEPARATION_FT - 1e-9)

    def test_speeds_equal(self):
        fleet = holding_stack(12, speed_knots=230.0)
        assert np.allclose(fleet.speeds_knots(), 230.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            holding_stack(0)


class TestArrivalStream:
    def test_all_on_approach(self):
        runway = Runway()
        fleet = arrival_stream(8, runway)
        assert int(runway.on_approach(fleet).sum()) == 8

    def test_initially_legal_spacing(self):
        runway = Runway()
        fleet = arrival_stream(8, runway, in_trail_nm=3.5)
        stats = sequence_approach(fleet, runway)
        assert stats.violations == 0
        assert stats.sequence == list(range(8))

    def test_tight_spacing_triggers_advisories(self):
        runway = Runway()
        fleet = arrival_stream(8, runway, in_trail_nm=2.0)
        stats = sequence_approach(fleet, runway)
        assert stats.violations == 7
        assert stats.advisories == 7

    def test_corridor_capacity_validation(self):
        with pytest.raises(ValueError):
            arrival_stream(100, Runway(), in_trail_nm=3.5)


class TestTerminalArea:
    def test_composite_counts(self):
        fleet = terminal_area(50, 6)
        assert fleet.n == 56

    def test_arrivals_preserved(self):
        runway = Runway()
        fleet = terminal_area(50, 6, runway)
        assert int(runway.on_approach(fleet).sum()) >= 6

    def test_runs_on_extended_schedule(self):
        from repro.backends.registry import resolve_backend
        from repro.extended import TerrainGrid, run_extended_schedule

        fleet = terminal_area(90, 6)
        res = run_extended_schedule(
            resolve_backend("cuda:titan-x-pascal"),
            fleet,
            terrain=TerrainGrid.generate(2018),
        )
        assert res.missed_deadlines == 0
        approach_times = res.task_times("approach")
        assert approach_times.size == 2  # periods 3 and 11
