"""Unit tests for the trace-engine benchmark harness (repro.harness.bench)."""

import json

import pytest

from repro.harness.bench import (
    BENCH_SCHEMA_VERSION,
    compare_to_baseline,
    render_bench,
    run_bench,
    write_bench,
)

#: a deliberately tiny profile: the record shape and the equivalence
#: check are under test here, not the speedup magnitude.
TINY = dict(ns=(64, 96), periods=1, platforms=["reference", "ap:staran"])


@pytest.fixture(scope="module")
def result():
    return run_bench(**TINY)


class TestRunBench:
    def test_record_shape(self, result):
        assert result["schema"] == BENCH_SCHEMA_VERSION
        assert [s["name"] for s in result["stages"]] == [
            "reexec", "trace_cold", "trace_warm",
        ]
        assert all(s["wall_s"] > 0 for s in result["stages"])
        assert result["config"]["ns"] == [64, 96]
        assert result["config"]["platforms"] == ["reference", "ap:staran"]
        assert result["speedup"]["cold"] > 0
        assert result["speedup"]["warm"] > 0

    def test_stages_are_equivalent(self, result):
        assert result["equivalent"] is True

    def test_record_is_json_round_trippable(self, result, tmp_path):
        out = tmp_path / "BENCH_test.json"
        write_bench(str(out), result)
        again = json.loads(out.read_text(encoding="utf-8"))
        assert again["speedup"]["cold"] == result["speedup"]["cold"]
        assert again["equivalent"] is True

    def test_render_mentions_every_stage(self, result):
        text = render_bench(result)
        for stage in ("reexec", "trace_cold", "trace_warm"):
            assert stage in text


class TestCompareToBaseline:
    def _record(self, cold, equivalent=True):
        return {"equivalent": equivalent, "speedup": {"cold": cold, "warm": cold}}

    def test_passes_at_and_above_the_floor(self):
        baseline = self._record(4.0)
        assert compare_to_baseline(self._record(4.0), baseline) == []
        assert compare_to_baseline(self._record(3.0), baseline) == []  # exactly -25%
        assert compare_to_baseline(self._record(9.9), baseline) == []

    def test_fails_below_the_floor(self):
        failures = compare_to_baseline(self._record(2.9), self._record(4.0))
        assert len(failures) == 1 and "regressed" in failures[0]

    def test_fails_on_non_equivalence_regardless_of_speed(self):
        failures = compare_to_baseline(
            self._record(99.0, equivalent=False), self._record(4.0)
        )
        assert any("byte-identical" in f for f in failures)

    def test_max_regression_is_configurable(self):
        baseline = self._record(4.0)
        # zero tolerance: anything below the baseline itself fails
        assert compare_to_baseline(
            self._record(4.0), baseline, max_regression=0.0
        ) == []
        assert compare_to_baseline(
            self._record(3.9), baseline, max_regression=0.0
        ) != []
        # half tolerance: 2.0 is the floor
        assert compare_to_baseline(
            self._record(2.0), baseline, max_regression=0.5
        ) == []
        assert compare_to_baseline(
            self._record(1.9), baseline, max_regression=0.5
        ) != []


class TestCommittedBaseline:
    def test_smoke_baseline_is_valid_and_equivalent(self):
        """The committed CI baseline must itself be a passing record."""
        from pathlib import Path

        path = (
            Path(__file__).resolve().parents[2]
            / "benchmarks" / "baselines" / "bench_smoke.json"
        )
        baseline = json.loads(path.read_text(encoding="utf-8"))
        assert baseline["schema"] == BENCH_SCHEMA_VERSION
        assert baseline["equivalent"] is True
        assert baseline["speedup"]["cold"] >= 3.0
