"""Unit tests for the reproduction report runner."""

import json

import pytest

from repro.harness.figures import EXPERIMENTS
from repro.harness.report import (
    QUICK_OVERRIDES,
    build_report,
    render_report,
    write_report,
)

FAST_SUBSET = ["fig8", "tbl-determinism", "abl-fused"]


@pytest.fixture(scope="module")
def report():
    return build_report(quick=True, only=FAST_SUBSET)


class TestBuildReport:
    def test_metadata(self, report):
        assert "Air Traffic Management" in report["paper"]
        assert report["profile"] == "quick"
        assert report["seed"] == 2018

    def test_contains_requested_experiments(self, report):
        assert sorted(report["experiments"]) == sorted(FAST_SUBSET)

    def test_entries_have_data_and_text(self, report):
        for exp_id, entry in report["experiments"].items():
            assert entry["data"]["experiment"] == exp_id
            assert exp_id in entry["rendered"]
            assert "parameters" in entry

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            build_report(only=["fig99"])

    def test_quick_overrides_cover_every_experiment(self):
        assert set(QUICK_OVERRIDES) == set(EXPERIMENTS)


class TestRendering:
    def test_render_contains_all_sections(self, report):
        text = render_report(report)
        for exp_id in FAST_SUBSET:
            assert exp_id in text
        assert "reproduction report" in text

    def test_json_round_trip(self, report, tmp_path):
        path = tmp_path / "report.json"
        write_report(str(path), report)
        loaded = json.loads(path.read_text())
        assert loaded["experiments"].keys() == report["experiments"].keys()
        assert (
            loaded["experiments"]["fig8"]["data"]["verdict"]
            == report["experiments"]["fig8"]["data"]["verdict"]
        )


class TestToDicts:
    def test_figure_to_dict(self):
        from repro.harness.figures import fig5

        d = fig5(ns=(96, 192, 288, 480), periods=1).to_dict()
        assert d["experiment"] == "fig5"
        assert set(d["series"]) == {
            "cuda:geforce-9800-gt", "cuda:gtx-880m", "cuda:titan-x-pascal",
        }
        assert all(len(v) == 4 for v in d["series"].values())
        for verdict in d["verdicts"].values():
            assert "growth_exponent" in verdict

    def test_deadline_to_dict(self):
        from repro.harness.figures import deadline_table

        d = deadline_table(
            ns=(96,), platforms=("cuda:titan-x-pascal",), major_cycles=1
        ).to_dict()
        assert d["experiment"] == "tbl-deadline"
        assert d["never_miss"] == ["cuda:titan-x-pascal"]

    def test_ablation_to_dict(self):
        from repro.harness.figures import ablation_fused

        d = ablation_fused(ns=(96,)).to_dict()
        assert d["experiment"] == "abl-fused"
        assert len(d["rows"]) == 1

    def test_json_serializable(self):
        from repro.harness.figures import fig9

        d = fig9(ns=(96, 192, 288, 480), periods=1).to_dict()
        json.dumps(d)  # must not raise
