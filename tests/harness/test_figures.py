"""Unit tests for the figure/table generators (tiny sweeps for speed)."""

import pytest

from repro.harness.figures import (
    EXPERIMENTS,
    ablation_blocksize,
    ablation_fused,
    ablation_throughput,
    deadline_table,
    determinism_table,
    fig4,
    fig5,
    fig8,
    run_experiment,
)

TINY = (96, 192, 288, 480)


class TestCurveFigures:
    def test_fig4_has_all_six_platforms(self):
        data = fig4(ns=TINY, periods=1)
        assert len(data.series) == 6
        assert data.task == "task1"
        assert all(len(v) == len(TINY) for v in data.series.values())
        out = data.render()
        assert "fig4" in out and "aircraft" in out

    def test_fig5_nvidia_only(self):
        data = fig5(ns=TINY, periods=1)
        assert set(data.series) == {
            "cuda:geforce-9800-gt",
            "cuda:gtx-880m",
            "cuda:titan-x-pascal",
        }

    def test_fig8_fit_figure(self):
        fig = fig8(ns=TINY, periods=1)
        assert fig.platform == "cuda:gtx-880m"
        assert len(fig.seconds) == len(TINY)
        out = fig.render()
        assert "linear" in out and "R^2" in out


class TestTables:
    def test_deadline_table_small(self):
        table = deadline_table(
            ns=(96,), platforms=("cuda:titan-x-pascal", "ap:staran"), major_cycles=1
        )
        out = table.render()
        assert "never miss" in out
        assert "cuda:titan-x-pascal" in out
        # Both deterministic platforms hold every deadline at n=96.
        assert table.report.platforms_never_missing() == [
            "ap:staran",
            "cuda:titan-x-pascal",
        ]

    def test_determinism_table(self):
        table = determinism_table(
            n=96,
            repeats=2,
            platforms=("cuda:gtx-880m", "mimd:xeon-16"),
        )
        out = table.render()
        rows = {r[0]: r[3] for r in table.rows}
        assert rows["cuda:gtx-880m"] == "yes"
        assert rows["mimd:xeon-16"] == "NO"
        assert "spread" in out


class TestAblations:
    def test_blocksize(self):
        table = ablation_blocksize(n=192, block_sizes=(32, 96, 256))
        assert len(table.rows) == 3
        assert "abl-blocksize" in table.render()

    def test_fused(self):
        table = ablation_fused(ns=(96, 192))
        assert len(table.rows) == 2
        # Split is never faster than fused.
        for _, fused, split, ratio in table.rows:
            assert float(ratio.rstrip("x")) >= 1.0

    def test_throughput(self):
        table = ablation_throughput(ns=(96, 192))
        out = table.render()
        assert "efficiency ranking" in out


class TestRegistry:
    def test_all_design_md_ids_present(self):
        assert set(EXPERIMENTS) == {
            "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
            "tbl-deadline", "tbl-determinism",
            "abl-blocksize", "abl-fused", "abl-throughput",
            "abl-resolution", "abl-smem", "ext-viability", "ext-vector",
        }

    def test_run_experiment_dispatch(self):
        fig = run_experiment("fig8", ns=TINY, periods=1)
        assert fig.figure_id == "fig8"

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="known"):
            run_experiment("fig99")
