"""Parallel-determinism and cache-equivalence tests for the sweep engine.

The contract under test (docs/parallel-and-caching.md): worker count,
scheduling order and cache state are *execution* details — none of them
may change a single byte of the produced data.
"""

import json
import os
import time

import pytest

from repro.backends.registry import all_platform_names
from repro.harness.cache import ResultCache
from repro.harness.parallel import current_options, sweep_options
from repro.harness.report import build_report
from repro.harness.sweep import SweepData, sweep
from repro.obs import collecting

#: worker count exercised by the pool tests; `make test-parallel` raises
#: it via the environment to shake out pool-related flakiness.
JOBS = int(os.environ.get("ATM_REPRO_TEST_JOBS", "4"))

#: includes the non-deterministic-timing MIMD model on purpose — per-cell
#: fresh instances make even its cells order-independent.
MIXED = ["reference", "cuda:gtx-880m", "mimd:xeon-16"]


class TestParallelDeterminism:
    def test_jobs_1_and_jobs_n_are_byte_identical(self):
        serial = sweep(MIXED, ns=(96, 192), periods=1, jobs=1)
        parallel = sweep(MIXED, ns=(96, 192), periods=1, jobs=JOBS)
        assert serial.to_canonical_json() == parallel.to_canonical_json()

    def test_platform_order_follows_input_not_completion(self):
        data = sweep(["ap:staran", "reference", "cuda:titan-x-pascal"],
                     ns=(96,), periods=1, jobs=JOBS)
        assert data.platforms() == ["ap:staran", "reference", "cuda:titan-x-pascal"]

    def test_sweepdata_round_trips_through_dict_form(self):
        data = sweep(["reference"], ns=(96, 192), periods=1)
        again = SweepData.from_dict(data.to_dict())
        assert again.to_canonical_json() == data.to_canonical_json()

    def test_backend_instances_still_work_under_jobs(self):
        """Live instances can't cross the process boundary; they must run
        in-parent (in matrix order) and merge into the same structure."""
        from repro.cuda.backend import CudaBackend

        inst = CudaBackend("gtx-880m", block_size=128)
        serial = sweep([inst, "reference"], ns=(96, 192), periods=1, jobs=1)
        parallel = sweep([inst, "reference"], ns=(96, 192), periods=1, jobs=JOBS)
        assert serial.to_canonical_json() == parallel.to_canonical_json()


class TestCacheEquivalence:
    def test_cached_rerun_is_byte_identical_and_all_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = sweep(MIXED, ns=(96, 192), periods=1, cache=cache)
        assert cache.misses == 6 and cache.stores == 6 and cache.hits == 0
        warm = sweep(MIXED, ns=(96, 192), periods=1, cache=cache)
        assert cache.hits == 6, "warm run must be served entirely from cache"
        assert cache.stores == 6, "warm run must not re-store anything"
        assert warm.to_canonical_json() == cold.to_canonical_json()

    def test_cache_and_pool_compose(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = sweep(MIXED, ns=(96, 192), periods=1, jobs=JOBS, cache=cache)
        warm = sweep(MIXED, ns=(96, 192), periods=1, jobs=JOBS, cache=cache)
        assert cache.hits == 6
        assert warm.to_canonical_json() == cold.to_canonical_json()

    def test_warm_full_sweep_under_quarter_of_cold_wall_time(self, tmp_path):
        """The acceptance criterion: a warm re-run of the full sweep is
        served from the cache (hit/miss counters prove it) and finishes
        in well under 25% of the cold wall time."""
        cache = ResultCache(tmp_path / "cache")
        platforms = all_platform_names()
        ns = (96, 480)

        t0 = time.perf_counter()
        cold = sweep(platforms, ns=ns, periods=1, cache=cache)
        cold_s = time.perf_counter() - t0
        cells = len(platforms) * len(ns)
        assert (cache.hits, cache.misses) == (0, cells)

        t0 = time.perf_counter()
        warm = sweep(platforms, ns=ns, periods=1, cache=cache)
        warm_s = time.perf_counter() - t0
        assert (cache.hits, cache.misses) == (cells, cells)
        assert warm.to_canonical_json() == cold.to_canonical_json()
        assert warm_s < 0.25 * cold_s, (
            f"warm {warm_s:.3f}s vs cold {cold_s:.3f}s — cache is not paying off"
        )


class TestReportEquivalence:
    SUBSET = ["fig5", "abl-fused"]

    def _strip_host(self, report):
        # host/python describe the machine, not the experiment data.
        return {k: v for k, v in report.items() if k not in ("host", "python")}

    def test_parallel_report_is_byte_identical(self):
        serial = build_report(only=self.SUBSET, jobs=1)
        parallel = build_report(only=self.SUBSET, jobs=JOBS)
        assert json.dumps(self._strip_host(serial), sort_keys=True) == json.dumps(
            self._strip_host(parallel), sort_keys=True
        )

    def test_cached_report_is_byte_identical(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        fresh = build_report(only=self.SUBSET, cache=cache)
        assert cache.stores > 0
        cached = build_report(only=self.SUBSET, cache=cache)
        assert cache.hits >= cache.stores, "second report must hit the cache"
        assert json.dumps(self._strip_host(fresh), sort_keys=True) == json.dumps(
            self._strip_host(cached), sort_keys=True
        )


class TestSweepOptions:
    def test_defaults(self):
        opts = current_options()
        assert opts.jobs == 1 and opts.cache is None

    def test_options_scope_and_restore(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with sweep_options(jobs=2, cache=cache) as opts:
            assert opts.jobs == 2
            assert current_options().cache is cache
            with sweep_options(jobs=1):
                # inner scope inherits the cache, overrides jobs
                assert current_options().jobs == 1
                assert current_options().cache is cache
        assert current_options().jobs == 1 and current_options().cache is None

    def test_ambient_cache_is_used_by_sweep(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with sweep_options(cache=cache):
            sweep(["reference"], ns=(96,), periods=1)
        assert cache.stores == 1

    def test_explicit_false_disables_ambient_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with sweep_options(cache=cache):
            sweep(["reference"], ns=(96,), periods=1, cache=False)
        assert cache.stores == 0

    def test_fault_tolerance_options_scope_and_restore(self, tmp_path):
        """retry/faults/journal ride the same ambient scope (an *empty*
        journal is falsy — it must still resolve by identity, not truth)."""
        from repro.harness.faults import FaultPlan, RetryPolicy, SweepJournal

        plan = FaultPlan({"oserror": 0.5}, seed=3)
        retry = RetryPolicy(max_attempts=5)
        journal = SweepJournal(tmp_path / "journal.jsonl")
        assert len(journal) == 0  # the falsy case under test
        with sweep_options(retry=retry, faults=plan, journal=journal):
            opts = current_options()
            assert opts.retry is retry
            assert opts.faults is plan
            assert opts.journal is journal
            with sweep_options(jobs=2):
                # inner scope inherits all three
                assert current_options().journal is journal
                assert current_options().faults is plan
            with sweep_options(faults=False, journal=False):
                # explicit False clears, as for cache/trace
                assert current_options().faults is None
                assert current_options().journal is None
        restored = current_options()
        assert restored.faults is None and restored.journal is None
        assert restored.retry == RetryPolicy()


class TestShardSpans:
    def test_every_shard_emits_a_span(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with collecting() as c:
            sweep(MIXED, ns=(96, 192), periods=1, cache=cache)
        shards = c.find("harness.shard")
        assert len(shards) == 6
        assert {s.attrs["source"] for s in shards} == {"inline"}
        assert all(s.modelled_s > 0 for s in shards)
        assert c.counters["harness.shards"] == 6
        assert c.counters["harness.shards_measured"] == 6

        with collecting() as c:
            sweep(MIXED, ns=(96, 192), periods=1, cache=cache)
        shards = c.find("harness.shard")
        assert {s.attrs["source"] for s in shards} == {"cache"}
        assert c.counters["harness.shards_cached"] == 6

    def test_direct_measure_platform_cache_hit_emits_shard_span(self, tmp_path):
        """Figure generators call measure_platform directly (no sweep);
        a cache hit elides the task spans, so the shard span is the only
        thing keeping a warm --trace attributable."""
        from repro.harness.sweep import measure_platform

        cache = ResultCache(tmp_path / "cache")
        with collecting() as c:
            measure_platform("reference", 96, periods=1, cache=cache)
        assert not c.find("harness.shard"), "a miss measures; task spans suffice"
        assert c.find("task1") and c.find("task23")

        with collecting() as c:
            m = measure_platform("reference", 96, periods=1, cache=cache)
        (shard,) = c.find("harness.shard")
        assert shard.attrs["source"] == "cache"
        assert shard.attrs["platform"] == "reference"
        assert shard.modelled_s == pytest.approx(
            sum(m.task1_seconds) + m.task23.seconds
        )
        assert not c.find("task1"), "hit must not re-run the tasks"

    def test_pool_shards_are_attributed(self):
        with collecting() as c:
            sweep(["reference", "ap:staran"], ns=(96, 192), periods=1, jobs=JOBS)
        shards = c.find("harness.shard")
        assert len(shards) == 4
        assert {s.attrs["source"] for s in shards} == {"pool"}
        assert {(s.attrs["platform"], s.attrs["n_aircraft"]) for s in shards} == {
            ("reference", 96), ("reference", 192),
            ("ap:staran", 96), ("ap:staran", 192),
        }


class TestCliFlags:
    def test_report_jobs_and_cache_flags(self, tmp_path, capsys):
        from repro.harness.cli import main

        cache_dir = tmp_path / "cache"
        out1 = tmp_path / "r1.json"
        out2 = tmp_path / "r2.json"
        assert main([
            "report", "--only", "abl-fused", "--out", str(out1),
            "--jobs", "2", "--cache-dir", str(cache_dir),
        ]) == 0
        assert main([
            "report", "--only", "abl-fused", "--out", str(out2),
            "--cache-dir", str(cache_dir),
        ]) == 0
        assert out1.read_bytes() == out2.read_bytes()
        capsys.readouterr()

    def test_no_cache_flag(self, tmp_path, capsys):
        from repro.harness.cli import main

        cache_dir = tmp_path / "cache"
        assert main([
            "report", "--only", "abl-fused", "--out", str(tmp_path / "r.json"),
            "--cache-dir", str(cache_dir), "--no-cache",
        ]) == 0
        assert not cache_dir.exists()
        capsys.readouterr()

    def test_cache_stats_and_clear_subcommands(self, tmp_path, capsys):
        from repro.harness.cli import main

        cache_dir = tmp_path / "cache"
        assert main([
            "report", "--only", "abl-fused", "--out", str(tmp_path / "r.json"),
            "--cache-dir", str(cache_dir),
        ]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "bytes" in out
        assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        assert "entries  0" in capsys.readouterr().out
