"""Unit tests for the measurement sweep machinery."""

import pytest

from repro.harness.sweep import (
    DEFAULT_NS_ALL_PLATFORMS,
    DEFAULT_NS_NVIDIA,
    measure_platform,
    sweep,
)


class TestDefaults:
    def test_sizes_are_multiples_of_96(self):
        for n in DEFAULT_NS_ALL_PLATFORMS + DEFAULT_NS_NVIDIA:
            assert n % 96 == 0

    def test_sizes_ascending(self):
        assert list(DEFAULT_NS_ALL_PLATFORMS) == sorted(DEFAULT_NS_ALL_PLATFORMS)
        assert list(DEFAULT_NS_NVIDIA) == sorted(DEFAULT_NS_NVIDIA)


class TestMeasurePlatform:
    def test_basic_measurement(self):
        m = measure_platform("reference", 96, periods=2)
        assert m.platform == "reference"
        assert m.n_aircraft == 96
        assert len(m.task1_seconds) == 2
        assert m.task1_mean_s > 0
        assert m.task23_s > 0
        assert m.task1_max_s >= m.task1_mean_s

    def test_periods_validation(self):
        with pytest.raises(ValueError):
            measure_platform("reference", 96, periods=0)

    def test_deterministic_for_deterministic_backends(self):
        a = measure_platform("cuda:titan-x-pascal", 96)
        b = measure_platform("cuda:titan-x-pascal", 96)
        assert a.task1_seconds == b.task1_seconds
        assert a.task23_s == b.task23_s


class TestSweep:
    def test_shape(self):
        data = sweep(["reference", "cuda:gtx-880m"], ns=(96, 192), periods=1)
        assert data.ns == (96, 192)
        assert set(data.platforms()) == {"reference", "cuda:gtx-880m"}
        assert len(data.task1_series("reference")) == 2
        assert len(data.task23_series("cuda:gtx-880m")) == 2

    def test_series_monotone_for_machine_models(self):
        data = sweep(["cuda:geforce-9800-gt"], ns=(96, 480, 960), periods=1)
        t23 = data.task23_series("cuda:geforce-9800-gt")
        assert t23[0] < t23[1] < t23[2]
