"""The large-n contract through the harness: pruning policy threading,
byte-identical sweeps and reports for every policy, streaming replay
under a tight trace budget, and the continental-scale bench profile.

Companion to tests/core/test_sweepline.py (the bit-level differential
wall); here the same contract is asserted at the sweep/report/bench
layers where the policy actually gets threaded.
"""

import json

import pytest

from repro.core.sweepline import PRUNE_MIN_N, resolve_pruning
from repro.core.trace import (
    DEFAULT_TRACE_BUDGET,
    TraceBudget,
    compute_trace,
    estimate_trace_bytes,
    stream_trace,
    trace_nbytes,
)
from repro.harness.bench import (
    LARGE_BENCH_PLATFORMS,
    large_bench_table,
    render_bench_large,
    run_bench_large,
)
from repro.harness.cache import ResultCache
from repro.harness.cli import build_parser, main
from repro.harness.parallel import sweep_options
from repro.harness.report import build_report
from repro.harness.sweep import _TRACE_MEMO, measure_platform, sweep
from repro.obs.metrics import MetricsRegistry, recording

PLATFORMS = ["cuda:titan-x-pascal", "ap:staran"]
NS = (96, 192)


def canonical_sweep(**kwargs):
    _TRACE_MEMO.clear()
    data = sweep(PLATFORMS, NS, periods=2, cache=False, **kwargs)
    return data.to_canonical_json()


class TestPolicyThreading:
    def test_sweep_bytes_identical_for_every_policy(self):
        baseline = canonical_sweep()
        for policy in ("auto", "on", "off"):
            assert canonical_sweep(pruning=policy) == baseline, policy

    def test_sweep_bytes_identical_under_pool(self):
        baseline = canonical_sweep()
        with sweep_options(jobs=2):
            assert canonical_sweep(pruning="on") == baseline

    def test_report_bytes_identical_on_vs_off(self):
        on = build_report(only=["fig5"], pruning="on")
        off = build_report(only=["fig5"], pruning="off")
        dump = lambda r: json.dumps(r, indent=2, sort_keys=True)  # noqa: E731
        assert dump(on) == dump(off)

    def test_trace_payload_identical_on_vs_off(self):
        on = compute_trace(96, periods=2, pruning="on").to_dict()
        off = compute_trace(96, periods=2, pruning="off").to_dict()
        assert on["params"].pop("pruning") == "on"
        assert off["params"].pop("pruning") == "off"
        assert on == off

    def test_cache_keys_split_on_effective_policy(self, tmp_path):
        from repro.backends.registry import resolve_backend

        backend = resolve_backend("ap:staran")
        cache = ResultCache(tmp_path)
        base = dict(n=96, seed=2018, periods=2, mode="signed")
        on = cache.key_for(backend, pruning="on", **base)
        off = cache.key_for(backend, pruning="off", **base)
        default = cache.key_for(backend, **base)
        assert on != off
        assert default == off  # the default is the brute-force path

    def test_auto_is_off_at_paper_sizes(self):
        # Every paper axis stops below the auto threshold, so default
        # runs replay the exact pre-pruner code path.
        assert max(5760, 3840) < PRUNE_MIN_N
        assert not resolve_pruning("auto", 5760)


class TestTraceBudget:
    def test_estimate_tracks_real_trace_size(self):
        trace = compute_trace(96, periods=2)
        est = estimate_trace_bytes(96, 2)
        real = trace_nbytes(trace)
        assert real <= est <= 4 * real

    def test_default_budget_admits_paper_cells(self):
        assert DEFAULT_TRACE_BUDGET.allows_resident(estimate_trace_bytes(3840, 3))

    def test_streamed_replay_is_byte_identical(self):
        baseline = canonical_sweep()
        tiny = TraceBudget(max_resident_bytes=1024, max_payload_bytes=1024)
        _TRACE_MEMO.clear()
        registry = MetricsRegistry()
        with recording(registry), sweep_options(trace_budget=tiny):
            data = sweep(PLATFORMS, NS, periods=2, cache=False)
        assert data.to_canonical_json() == baseline
        assert not _TRACE_MEMO  # nothing memoized above the resident bound
        families = registry.snapshot()["families"]
        paths = {
            s["labels"]["path"]: s["value"]
            for s in families["atm_trace_peak_bytes"]["series"]
        }
        assert "streamed" in paths
        # Streamed peak is one record, not the whole trace.
        assert 0 < paths["streamed"] < estimate_trace_bytes(max(NS), 2)

    def test_stream_yields_periods_then_collision(self):
        records = list(stream_trace(96, periods=2))
        assert len(records) == 3
        assert [type(r).__name__ for r in records] == [
            "TracePeriod", "TracePeriod", "CollisionRecord",
        ]


class TestBenchLarge:
    @pytest.fixture(scope="class")
    def result(self):
        return run_bench_large(n=512, calibration_n=256, periods=2)

    def test_platforms_default(self):
        assert len(LARGE_BENCH_PLATFORMS) == 5

    def test_record_shape(self, result):
        assert result["profile"] == "large"
        assert result["config"]["pruning"] == "on"
        assert result["calibration"]["speedup"] > 0
        assert result["equivalent"] is True
        table = result["large"]["table"]
        assert [row["platform"] for row in table] == list(LARGE_BENCH_PLATFORMS)
        for row in table:
            assert len(row["tracking_margins_s"]) == 1  # periods - 1
            assert isinstance(row["deadline_met"], bool)
        assert result["memory"]["peak_rss_bytes"] > 0
        assert result["memory"]["trace_peak_bytes"]

    def test_table_is_deterministic(self, result):
        again = run_bench_large(n=512, calibration_n=256, periods=2)
        dump = lambda r: json.dumps(  # noqa: E731
            large_bench_table(r), indent=2, sort_keys=True
        )
        assert dump(result) == dump(again)

    def test_table_strips_nondeterminism(self, result):
        table = json.dumps(large_bench_table(result))
        for key in ("wall_s", "timestamp", "host", "rss", "python"):
            assert key not in table

    def test_render(self, result):
        text = render_bench_large(result)
        assert "calibration" in text
        for platform in LARGE_BENCH_PLATFORMS:
            assert platform in text


class TestCli:
    def test_report_pruning_flag_parses(self):
        args = build_parser().parse_args(["report", "--pruning", "on"])
        assert args.pruning == "on"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "--pruning", "sometimes"])

    def test_bench_large_flags_parse(self):
        args = build_parser().parse_args(
            ["bench", "--large", "--large-n", "4096", "--table-out", "t.json"]
        )
        assert args.large and args.large_n == 4096
        assert args.table_out == "t.json"

    def test_bench_large_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "BENCH_large_n.json"
        table = tmp_path / "table.json"
        code = main(
            [
                "bench", "--large", "--large-n", "512",
                "--calibration-n", "256", "--periods", "2",
                "--out", str(out), "--table-out", str(table),
            ]
        )
        assert code == 0
        record = json.loads(out.read_text(encoding="utf-8"))
        assert record["profile"] == "large"
        assert record["equivalent"] is True
        projected = json.loads(table.read_text(encoding="utf-8"))
        assert projected["table"] == record["large"]["table"]
