"""Chaos suite for the fault-tolerant sweep executor (repro.harness.faults).

The contract under test (docs/robustness.md): worker crashes, hung
shards, transient I/O errors and store corruption are *execution*
details — whenever retries, pool rebuilds or inline degradation let the
sweep complete, the produced bytes are identical to a fault-free serial
run, and every failure is visible on the obs collector rather than
silently swallowed.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.cache import ResultCache, TraceStore
from repro.harness.faults import (
    FAULT_KINDS,
    FaultPlan,
    RetryPolicy,
    SweepJournal,
    parse_fault_spec,
)
from repro.harness.parallel import sweep_options
from repro.harness.sweep import sweep
from repro.obs import collecting

JOBS = int(os.environ.get("ATM_REPRO_TEST_JOBS", "2"))

#: small, fast matrix shared by the chaos runs.
PLATFORMS = ["reference", "cuda:gtx-880m"]
NS = (96, 192)

#: no-waiting retry policy so chaos tests stay quick.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_s=0.001)


def clean_sweep_json() -> str:
    """The fault-free serial baseline every chaos run must reproduce."""
    return sweep(PLATFORMS, ns=NS, periods=1).to_canonical_json()


# ---------------------------------------------------------------------------
# the FaultPlan itself
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_rate_one_always_injects_on_faulted_attempts_only(self):
        plan = FaultPlan({"crash": 1.0}, seed=0)
        assert plan.should_inject("crash", "reference@96", 0)
        assert not plan.should_inject("crash", "reference@96", 1), (
            "retries beyond faulted_attempts must run clean"
        )

    def test_rate_zero_never_injects(self):
        plan = FaultPlan({"crash": 0.0}, seed=0)
        assert not any(
            plan.should_inject("crash", f"s@{n}", 0) for n in range(100)
        )

    def test_unknown_kind_and_bad_rate_are_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kinds"):
            FaultPlan({"meteor": 1.0})
        with pytest.raises(ValueError, match="within"):
            FaultPlan({"crash": 1.5})

    def test_worker_fault_probes_kinds_in_order(self):
        plan = FaultPlan({"crash": 1.0, "timeout": 1.0}, seed=0)
        assert plan.worker_fault("any@96", 0) == "crash"
        assert plan.worker_fault("any@96", 1) is None

    def test_spec_round_trip(self):
        plan = parse_fault_spec("crash=0.5,timeout=0.25,seed=7,attempts=2,hang=0.5")
        assert plan.rates == {"crash": 0.5, "timeout": 0.25}
        assert plan.seed == 7
        assert plan.faulted_attempts == 2
        assert plan.hang_s == 0.5
        assert parse_fault_spec(plan.to_spec()) == plan

    def test_bad_specs_raise(self):
        for spec in ("meteor=1", "crash", "crash=x", "seed=1.5"):
            with pytest.raises(ValueError):
                parse_fault_spec(spec)

    def test_corrupt_flips_exactly_one_bit(self, tmp_path):
        path = tmp_path / "entry.json"
        original = b'{"measurement": 1}'
        path.write_bytes(original)
        FaultPlan(seed=3).corrupt(path)
        mutated = path.read_bytes()
        assert mutated != original and len(mutated) == len(original)
        diffs = [i for i, (a, b) in enumerate(zip(original, mutated)) if a != b]
        assert len(diffs) == 1
        # ...and deterministically: the same plan flips the same bit back.
        FaultPlan(seed=3).corrupt(path)
        assert path.read_bytes() == original


class TestFaultPlanProperties:
    """FaultPlan decisions are pure functions of (seed, kind, key, attempt)."""

    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        rate=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        kind=st.sampled_from(FAULT_KINDS),
        key=st.text(min_size=1, max_size=30),
        attempt=st.integers(min_value=0, max_value=3),
    )
    def test_decisions_are_deterministic_under_a_fixed_seed(
        self, seed, rate, kind, key, attempt
    ):
        a = FaultPlan({kind: rate}, seed=seed, faulted_attempts=4)
        b = FaultPlan({kind: rate}, seed=seed, faulted_attempts=4)
        assert a.should_inject(kind, key, attempt) == b.should_inject(
            kind, key, attempt
        )

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        key=st.text(min_size=1, max_size=30),
    )
    def test_higher_rate_never_injects_less(self, seed, key):
        lo = FaultPlan({"crash": 0.3}, seed=seed)
        hi = FaultPlan({"crash": 0.8}, seed=seed)
        if lo.should_inject("crash", key, 0):
            assert hi.should_inject("crash", key, 0)


# ---------------------------------------------------------------------------
# chaos: the executor under injected faults
# ---------------------------------------------------------------------------


class TestChaosByteEquivalence:
    def test_inline_oserror_is_retried_and_byte_identical(self):
        baseline = clean_sweep_json()
        plan = FaultPlan({"oserror": 1.0}, seed=1)
        with collecting() as c, sweep_options(faults=plan, retry=FAST_RETRY):
            chaos = sweep(PLATFORMS, ns=NS, periods=1).to_canonical_json()
        assert chaos == baseline
        assert c.counters["harness.fault.oserrors"] == 4
        assert c.counters["harness.fault.retries"] == 4
        assert c.find("harness.fault"), "failures must emit harness.fault spans"

    def test_worker_crash_is_survived_and_byte_identical(self):
        """Killed pool workers break the whole pool; the executor rebuilds
        it, resubmits, and the merged bytes don't move."""
        baseline = clean_sweep_json()
        plan = FaultPlan({"crash": 0.5}, seed=11)
        assert any(
            plan.should_inject("crash", f"{p}@{n}", 0)
            for p in ("reference", "gtx-880m")
            for n in NS
        ), "seed must actually kill at least one worker"
        with collecting() as c, sweep_options(faults=plan, retry=FAST_RETRY):
            chaos = sweep(PLATFORMS, ns=NS, periods=1, jobs=JOBS).to_canonical_json()
        assert chaos == baseline
        assert c.counters["harness.fault.worker_crashes"] >= 1

    def test_shard_timeout_is_survived_and_byte_identical(self):
        baseline = clean_sweep_json()
        plan = FaultPlan({"timeout": 0.5}, seed=5, hang_s=0.6)
        retry = RetryPolicy(max_attempts=3, backoff_s=0.001, timeout_s=0.2)
        with collecting() as c, sweep_options(faults=plan, retry=retry):
            chaos = sweep(PLATFORMS, ns=NS, periods=1, jobs=JOBS).to_canonical_json()
        assert chaos == baseline
        assert c.counters["harness.fault.timeouts"] >= 1

    def test_repeatedly_dying_workers_degrade_to_inline(self):
        """faulted_attempts > rebuild budget: the pool can never finish a
        shard, so every shard must complete inline instead of aborting."""
        baseline = clean_sweep_json()
        plan = FaultPlan({"crash": 1.0}, seed=2, faulted_attempts=99)
        retry = RetryPolicy(max_attempts=2, backoff_s=0.001)
        with collecting() as c, sweep_options(faults=plan, retry=retry):
            chaos = sweep(PLATFORMS, ns=NS, periods=1, jobs=JOBS).to_canonical_json()
        assert chaos == baseline
        assert c.counters["harness.fault.degraded_to_inline"] >= 1

    def test_combined_chaos_with_cache_corruption(self, tmp_path):
        """The acceptance scenario: crash + timeout + corrupted cache
        entries in one run, still byte-identical, corruption quarantined."""
        baseline = clean_sweep_json()
        cache = ResultCache(tmp_path / "cache")
        plan = parse_fault_spec(
            "crash=0.4,oserror=0.3,corrupt-result=1,seed=13"
        )
        with sweep_options(faults=plan, retry=FAST_RETRY):
            cold = sweep(
                PLATFORMS, ns=NS, periods=1, jobs=JOBS, cache=cache
            ).to_canonical_json()
        assert cold == baseline
        # every stored entry was bit-flipped after the write...
        with collecting() as c, sweep_options(faults=plan, retry=FAST_RETRY):
            warm = sweep(
                PLATFORMS, ns=NS, periods=1, jobs=JOBS, cache=cache
            ).to_canonical_json()
        assert warm == baseline
        # ...so the warm run detected, quarantined and recomputed them.
        assert cache.quarantined == 4
        assert c.counters["harness.fault.quarantined"] == 4
        assert len(list((tmp_path / "cache" / "quarantine").glob("*.json"))) >= 4


# ---------------------------------------------------------------------------
# store integrity
# ---------------------------------------------------------------------------


class TestStoreIntegrity:
    def test_trace_store_corruption_is_quarantined(self, tmp_path):
        from repro.core.trace import compute_trace

        store = TraceStore(tmp_path / "traces")
        trace = compute_trace(64, periods=1)
        store.put(trace.key(), trace)
        path = store._path(trace.key())
        FaultPlan(seed=9).corrupt(path)
        with collecting() as c:
            assert store.get(trace.key()) is None
        assert store.quarantined == 1
        assert not path.exists()
        assert (store.root / "quarantine" / path.name).exists()
        assert c.counters["harness.fault.quarantined"] == 1

    def test_corrupt_trace_injection_end_to_end(self, tmp_path):
        """--inject-faults corrupt-trace: the trace tier self-heals and
        the sweep bytes never move."""
        from repro.harness.sweep import _TRACE_MEMO

        baseline = clean_sweep_json()
        traces = TraceStore(tmp_path / "traces")
        plan = FaultPlan({"corrupt-trace": 1.0}, seed=21)
        # clear the process-level memo so both runs actually hit the store
        _TRACE_MEMO.clear()
        with sweep_options(faults=plan, traces=traces):
            cold = sweep(PLATFORMS, ns=NS, periods=1).to_canonical_json()
        _TRACE_MEMO.clear()
        with collecting() as c, sweep_options(faults=plan, traces=traces):
            warm = sweep(PLATFORMS, ns=NS, periods=1).to_canonical_json()
        assert cold == warm == baseline
        assert traces.quarantined == len(NS)
        assert c.counters["harness.fault.quarantined"] == len(NS)

    def test_io_errors_are_counted_not_quarantined(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        key = "ab" + "0" * 62
        monkeypatch.setattr(
            type(cache),
            "_read_verified",
            lambda self, path: (_ for _ in ()).throw(PermissionError("denied")),
        )
        with collecting() as c:
            assert cache.get(key) is None
        assert cache.io_errors == 1 and cache.quarantined == 0
        assert c.counters["harness.fault.io_errors"] == 1

    def test_stats_report_quarantine_and_io_counters(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        stats = cache.stats()
        for field in ("quarantined", "quarantine_files", "io_errors"):
            assert field in stats


# ---------------------------------------------------------------------------
# the checkpoint journal
# ---------------------------------------------------------------------------


class TestSweepJournal:
    def test_fresh_journal_discards_previous_run(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"stale": true}\n', encoding="utf-8")
        journal = SweepJournal(path)
        assert len(journal) == 0 and not path.exists()

    def test_resume_recomputes_only_unfinished_cells(self, tmp_path):
        """A sweep killed after the first fleet size resumes: the
        completed cells come from the journal (counted), only the rest
        are measured, and the bytes match a clean run."""
        baseline = clean_sweep_json()
        path = tmp_path / "journal.jsonl"
        first = SweepJournal(path)
        with sweep_options(journal=first):
            sweep(PLATFORMS, ns=NS[:1], periods=1)  # "crashed" after n=96
        assert first.recorded == len(PLATFORMS)

        resumed = SweepJournal(path, resume=True)
        with collecting() as c, sweep_options(journal=resumed):
            full = sweep(PLATFORMS, ns=NS, periods=1).to_canonical_json()
        assert full == baseline
        assert c.counters["harness.fault.resumed_cells"] == len(PLATFORMS)
        assert c.counters["harness.shards_measured"] == len(PLATFORMS)
        journal_shards = [
            s for s in c.find("harness.shard") if s.attrs["source"] == "journal"
        ]
        assert len(journal_shards) == len(PLATFORMS)

    def test_resume_composes_with_pool_execution(self, tmp_path):
        baseline = clean_sweep_json()
        path = tmp_path / "journal.jsonl"
        first = SweepJournal(path)
        with sweep_options(journal=first):
            sweep(PLATFORMS, ns=NS[:1], periods=1)
        resumed = SweepJournal(path, resume=True)
        with collecting() as c, sweep_options(journal=resumed):
            full = sweep(PLATFORMS, ns=NS, periods=1, jobs=JOBS).to_canonical_json()
        assert full == baseline
        assert c.counters["harness.fault.resumed_cells"] == len(PLATFORMS)

    def test_torn_tail_line_is_dropped_not_fatal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = SweepJournal(path)
        with sweep_options(journal=journal):
            sweep(["reference"], ns=NS, periods=1)
        # SIGKILL mid-append: a truncated, digest-less final line.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "deadbeef", "measurement": {"pl')
        with collecting() as c:
            again = SweepJournal(path, resume=True)
        assert again.dropped_lines == 1
        assert len(again) == len(NS)
        assert c.counters["harness.fault.journal_dropped"] == 1

    def test_tampered_line_fails_its_digest(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = SweepJournal(path)
        with sweep_options(journal=journal):
            sweep(["reference"], ns=NS[:1], periods=1)
        lines = path.read_text(encoding="utf-8").splitlines()
        record = json.loads(lines[0])
        record["measurement"]["n_aircraft"] = 4096
        path.write_text(json.dumps(record) + "\n", encoding="utf-8")
        again = SweepJournal(path, resume=True)
        assert again.dropped_lines == 1 and len(again) == 0

    def test_journal_keys_are_cost_model_sensitive(self, tmp_path, monkeypatch):
        """A journal line from before a cost-model edit must not be
        resurrected after it — the fingerprint key stops matching."""
        import repro.backends.reference as ref_mod

        path = tmp_path / "journal.jsonl"
        journal = SweepJournal(path)
        with sweep_options(journal=journal):
            sweep(["reference"], ns=NS[:1], periods=1)
        monkeypatch.setattr(ref_mod, "_SECONDS_PER_OP", 2e-9)
        resumed = SweepJournal(path, resume=True)
        with collecting() as c, sweep_options(journal=resumed):
            sweep(["reference"], ns=NS[:1], periods=1)
        assert resumed.resumed_cells == 0, "stale checkpoint must not match"
        assert c.counters["harness.shards_measured"] == 1


# ---------------------------------------------------------------------------
# the CLI surface
# ---------------------------------------------------------------------------


class TestCliFaultFlags:
    def test_injected_report_is_byte_identical_to_clean_run(self, tmp_path, capsys):
        from repro.harness.cli import main

        clean = tmp_path / "clean.json"
        chaos = tmp_path / "chaos.json"
        assert main(
            ["report", "--only", "abl-fused", "--out", str(clean)]
        ) == 0
        assert main(
            [
                "report", "--only", "abl-fused", "--out", str(chaos),
                "--jobs", str(JOBS),
                "--inject-faults", "oserror=0.5,seed=3",
            ]
        ) == 0
        assert clean.read_bytes() == chaos.read_bytes()
        capsys.readouterr()

    def test_resume_flag_round_trips(self, tmp_path, capsys):
        from repro.harness.cli import main

        cache_dir = tmp_path / "cache"
        out1 = tmp_path / "r1.json"
        out2 = tmp_path / "r2.json"
        assert main(
            [
                "report", "--only", "abl-fused", "--out", str(out1),
                "--cache-dir", str(cache_dir),
            ]
        ) == 0
        assert (cache_dir / "journal.jsonl").exists()
        capsys.readouterr()
        assert main(
            [
                "report", "--only", "abl-fused", "--out", str(out2),
                "--cache-dir", str(cache_dir), "--resume",
            ]
        ) == 0
        assert out1.read_bytes() == out2.read_bytes()
        err = capsys.readouterr().err
        assert "journal" in err

    def test_resume_requires_cache_dir(self, tmp_path, capsys):
        from repro.harness.cli import main

        assert main(["report", "--only", "abl-fused", "--resume"]) == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_bad_fault_spec_is_a_usage_error(self, capsys):
        from repro.harness.cli import main

        assert main(
            ["report", "--only", "abl-fused", "--inject-faults", "meteor=1"]
        ) == 2
        assert "inject-faults" in capsys.readouterr().err


class TestServiceFaultKinds:
    """The service-layer kinds (reset/stall/corrupt-journal) share the
    spec grammar and the deterministic draw with the worker kinds."""

    def test_service_kinds_are_registered(self):
        from repro.harness.faults import SERVICE_FAULT_KINDS, WORKER_FAULT_KINDS

        assert set(SERVICE_FAULT_KINDS) == {"reset", "stall", "corrupt-journal"}
        assert set(SERVICE_FAULT_KINDS) <= set(FAULT_KINDS)
        assert not set(SERVICE_FAULT_KINDS) & set(WORKER_FAULT_KINDS)

    def test_service_spec_round_trips(self):
        plan = parse_fault_spec("reset=0.5,stall=0.25,corrupt-journal=1,hang=3,seed=9")
        assert plan.rates == {
            "reset": 0.5,
            "stall": 0.25,
            "corrupt-journal": 1.0,
        }
        assert plan.hang_s == 3.0 and plan.seed == 9
        assert parse_fault_spec(plan.to_spec()) == plan

    def test_service_kinds_never_probe_as_worker_faults(self):
        plan = FaultPlan({"reset": 1.0, "stall": 1.0}, seed=0)
        assert plan.worker_fault("any@96", 0) is None


class TestJitteredBackoff:
    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(max_attempts=5, backoff_s=0.1)
        for attempt in range(4):
            base = policy.backoff_for(attempt)
            delay = policy.jittered_backoff_for(
                attempt, seed=7, key="req3", cap_s=None
            )
            again = policy.jittered_backoff_for(
                attempt, seed=7, key="req3", cap_s=None
            )
            assert delay == again, "jitter must be a pure function"
            assert base / 2 <= delay < base

    def test_cap_bounds_the_exponential_growth(self):
        policy = RetryPolicy(max_attempts=10, backoff_s=1.0)
        delay = policy.jittered_backoff_for(8, seed=0, key="k", cap_s=0.25)
        assert delay < 0.25  # capped before the jitter factor

    def test_different_keys_spread_the_storm(self):
        policy = RetryPolicy(backoff_s=1.0)
        delays = {
            policy.jittered_backoff_for(0, seed=0, key=f"req{i}", cap_s=None)
            for i in range(16)
        }
        assert len(delays) > 1, "jitter must decorrelate concurrent clients"
