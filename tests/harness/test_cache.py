"""Unit tests for the fingerprinted result cache (repro.harness.cache)."""

import json

import numpy as np
import pytest

from repro.backends.reference import ReferenceBackend
from repro.backends.registry import resolve_backend
from repro.core.collision import DetectionMode
from repro.harness.cache import CACHE_SCHEMA_VERSION, ResultCache
from repro.harness.sweep import measure_platform


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestKeys:
    def test_key_is_stable(self, cache):
        b = resolve_backend("cuda:gtx-880m")
        k1 = cache.key_for(b, n=96, seed=2018, periods=2, mode=DetectionMode.SIGNED)
        k2 = cache.key_for(b, n=96, seed=2018, periods=2, mode=DetectionMode.SIGNED)
        assert k1 == k2
        assert len(k1) == 64  # sha256 hex

    def test_key_separates_every_task_parameter(self, cache):
        b = resolve_backend("cuda:gtx-880m")
        base = dict(n=96, seed=2018, periods=2, mode=DetectionMode.SIGNED)
        keys = {cache.key_for(b, **base)}
        for change in (
            dict(base, n=192),
            dict(base, seed=1),
            dict(base, periods=3),
            dict(base, mode=DetectionMode.PAPER_ABS),
        ):
            keys.add(cache.key_for(b, **change))
        assert len(keys) == 5

    def test_key_separates_backend_configurations(self, cache):
        from repro.cuda.backend import CudaBackend

        params = dict(n=96, seed=2018, periods=2, mode=DetectionMode.SIGNED)
        k96 = cache.key_for(CudaBackend("gtx-880m", block_size=96), **params)
        k128 = cache.key_for(CudaBackend("gtx-880m", block_size=128), **params)
        assert k96 != k128


class TestRoundTrip:
    def test_put_get_is_exact(self, cache):
        m = measure_platform("cuda:titan-x-pascal", 96, periods=2, cache=False)
        key = cache.key_for(
            resolve_backend("cuda:titan-x-pascal"),
            n=96, seed=2018, periods=2, mode=DetectionMode.SIGNED,
        )
        cache.put(key, m)
        got = cache.get(key)
        # exact float equality end to end — the cached sweep must be
        # byte-identical to the fresh one, not merely approximately so.
        assert got.task1_seconds == m.task1_seconds
        assert got.task23.seconds == m.task23.seconds
        assert got.task23.breakdown.as_dict() == m.task23.breakdown.as_dict()
        assert got.task23.detail == m.task23.detail
        assert got.to_dict() == m.to_dict()

    def test_missing_key_is_a_counted_miss(self, cache):
        assert cache.get("0" * 64) is None
        assert cache.misses == 1 and cache.hits == 0

    def test_corrupt_entry_is_a_quarantined_miss(self, cache):
        m = measure_platform("reference", 96, periods=1, cache=False)
        key = "ab" + "0" * 62
        cache.put(key, m)
        path = cache._path(key)
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None
        assert cache.misses == 1
        # Never silently discarded: the bad file moves to quarantine/.
        assert cache.quarantined == 1
        assert not path.exists()
        assert (cache.root / "quarantine" / path.name).exists()

    def test_digest_mismatch_is_detected_and_quarantined(self, cache):
        """A bit flip that keeps the JSON valid must still be caught."""
        m = measure_platform("reference", 96, periods=1, cache=False)
        key = "cd" + "0" * 62
        cache.put(key, m)
        path = cache._path(key)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["measurement"]["n_aircraft"] = 97
        path.write_text(json.dumps(entry, sort_keys=True), encoding="utf-8")
        assert cache.get(key) is None
        assert cache.quarantined == 1
        assert (cache.root / "quarantine" / path.name).exists()

    def test_stats_and_clear(self, cache):
        m = measure_platform("reference", 96, periods=1, cache=False)
        for i in range(3):
            cache.put(f"{i:02d}" + "0" * 62, m)
        s = cache.stats()
        assert s["entries"] == 3 and s["stores"] == 3 and s["bytes"] > 0
        assert f"v{CACHE_SCHEMA_VERSION}" in str(cache._path("00" + "0" * 62))
        assert cache.clear() == 3
        assert cache.stats()["entries"] == 0


class TestMeasurePlatformIntegration:
    def test_second_measurement_is_served_from_cache(self, cache):
        a = measure_platform("ap:staran", 96, periods=1, cache=cache)
        assert (cache.hits, cache.misses, cache.stores) == (0, 1, 1)
        b = measure_platform("ap:staran", 96, periods=1, cache=cache)
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)
        assert a.to_dict() == b.to_dict()

    def test_cost_model_edit_invalidates_only_that_backend(self, cache, monkeypatch):
        before = measure_platform("reference", 96, periods=1, cache=cache)
        measure_platform("ap:staran", 96, periods=1, cache=cache)
        assert cache.stores == 2

        # Recalibrate one cost-model constant of the reference backend;
        # describe() reports it, so the fingerprint must move.
        import repro.backends.reference as ref_mod

        monkeypatch.setattr(ref_mod, "_SECONDS_PER_OP", 2e-9)
        after = measure_platform("reference", 96, periods=1, cache=cache)
        assert cache.stores == 3, "edited backend must re-measure"
        # The fresh measurement reflects the doubled per-op cost — it was
        # not served from the stale entry.
        assert after.task23.seconds == pytest.approx(2 * before.task23.seconds)
        # ...while the untouched backend still hits.
        hits_before = cache.hits
        measure_platform("ap:staran", 96, periods=1, cache=cache)
        assert cache.hits == hits_before + 1

    def test_stateful_instances_are_never_cached(self, cache):
        from repro.mimd.backend import MimdBackend

        inst = MimdBackend()
        measure_platform(inst, 96, periods=1, cache=cache)
        assert cache.stores == 0 and cache.hits == 0
        # ...but the registry-name form of the same platform is cacheable
        # (a fresh instance per cell makes it a pure function of the name).
        measure_platform("mimd:xeon-16", 96, periods=1, cache=cache)
        assert cache.stores == 1


class TestDescribeCanonicalization:
    """Regression: numpy scalars/tuples in describe() must flow through
    the one shared canonicalizer in both the fingerprint and report.py."""

    class _NumpyDescribeBackend(ReferenceBackend):
        name = "reference"

        def describe(self):
            info = super().describe()
            info.update(
                clock_ghz=np.float64(1.531),
                n_pes=np.int64(96),
                compute_capability=(np.int32(6), np.int32(1)),
                flags=np.array([1, 2, 3]),
            )
            return info

    def test_fingerprint_accepts_numpy_describe(self):
        fp = self._NumpyDescribeBackend().fingerprint()
        assert len(fp) == 64

    def test_numpy_and_plain_describe_fingerprint_identically(self):
        class _PlainDescribeBackend(ReferenceBackend):
            name = "reference"

            def describe(inner):
                info = ReferenceBackend.describe(inner)
                info.update(
                    clock_ghz=1.531,
                    n_pes=96,
                    compute_capability=[6, 1],
                    flags=[1, 2, 3],
                )
                return info

        assert (
            self._NumpyDescribeBackend().fingerprint()
            == _PlainDescribeBackend().fingerprint()
        )

    def test_cache_key_accepts_numpy_describe(self, cache):
        key = cache.key_for(
            self._NumpyDescribeBackend(),
            n=96, seed=2018, periods=1, mode=DetectionMode.SIGNED,
        )
        assert len(key) == 64

    def test_report_platform_descriptions_serialize(self, monkeypatch):
        """report.json embeds describe() output; a backend leaking numpy
        values must not break (or destabilize) the JSON document."""
        from repro.cuda.backend import CudaBackend
        from repro.harness.report import build_report

        original = CudaBackend.describe

        def numpy_describe(self):
            info = original(self)
            info["sm_count"] = np.int64(info["sm_count"])
            info["caps_tuple"] = (np.int32(1), np.int32(2))
            return info

        monkeypatch.setattr(CudaBackend, "describe", numpy_describe)
        report = build_report(only=[])
        text = json.dumps(report, sort_keys=True)
        assert '"caps_tuple": [1, 2]' in text
        for name in (
            "cuda:titan-x-pascal", "ap:staran", "mimd:xeon-16", "reference",
        ):
            assert name in report["platforms"]


class TestTraceStore:
    """The on-disk tier for functional traces mirrors ResultCache."""

    @pytest.fixture
    def store(self, tmp_path):
        from repro.harness.cache import TraceStore

        return TraceStore(tmp_path / "traces")

    def test_put_get_round_trip_is_exact(self, store):
        from repro.core.trace import compute_trace

        trace = compute_trace(96, periods=2)
        store.put(trace.key(), trace)
        got = store.get(trace.key())
        assert got.to_dict() == trace.to_dict()
        assert (store.hits, store.misses, store.stores) == (1, 0, 1)

    def test_missing_and_corrupt_entries_are_counted_misses(self, store):
        from repro.core.trace import compute_trace

        assert store.get("0" * 64) is None
        trace = compute_trace(64, periods=1)
        store.put(trace.key(), trace)
        store._path(trace.key()).write_text("{not json", encoding="utf-8")
        assert store.get(trace.key()) is None
        assert store.misses == 2
        # The missing key is a plain miss; the corrupt one is quarantined.
        assert store.quarantined == 1
        assert (store.root / "quarantine").exists()

    def test_store_version_lives_in_the_path(self, store):
        from repro.harness.cache import TRACE_STORE_VERSION

        assert f"v{TRACE_STORE_VERSION}" in str(store._path("ab" + "0" * 62))

    def test_stats_and_clear(self, store):
        from repro.core.trace import compute_trace

        for n in (64, 96):
            trace = compute_trace(n, periods=1)
            store.put(trace.key(), trace)
        s = store.stats()
        assert s["entries"] == 2 and s["stores"] == 2 and s["bytes"] > 0
        assert store.clear() == 2
        assert store.stats()["entries"] == 0
