"""Deadline SLO metrics through the sweep path, and their determinism.

The contract (docs/observability.md): the deadline families embedded in
a report are a pure function of the measured cells — byte-identical for
any worker count or cache state — and the paper's deadline claims are
reproducible from the metrics snapshot *alone*, without re-reading the
measurement tables.
"""

from __future__ import annotations

import os

from repro.analysis.deadlines import deadline_verdicts
from repro.harness.cache import ResultCache
from repro.harness.figures import deadline_table
from repro.harness.report import build_report
from repro.harness.sweep import sweep
from repro.obs import aggregate_spans, collecting
from repro.obs.metrics import recording
from repro.core.canonical import canonical_json

JOBS = int(os.environ.get("ATM_REPRO_TEST_JOBS", "4"))

PLATFORMS = [
    "ap:staran",
    "cuda:titan-x-pascal",
    "simd:clearspeed-csx600",
    "mimd:xeon-16",
]


class TestDeadlineReproduction:
    def test_paper_verdicts_from_snapshot_alone(self):
        """Table 2's qualitative claims, read back from metrics only."""
        with recording() as registry:
            deadline_table(ns=(960, 1920), platforms=PLATFORMS, major_cycles=1)
        verdicts = deadline_verdicts(registry.snapshot())

        for clean in ("ap:staran", "cuda:titan-x-pascal", "simd:clearspeed-csx600"):
            assert verdicts[clean]["total_misses"] == 0
            assert verdicts[clean]["never_misses"] is True
            assert verdicts[clean]["first_miss_n"] is None

        mimd = verdicts["mimd:xeon-16"]
        assert mimd["never_misses"] is False
        assert mimd["total_misses"] > 0
        assert mimd["first_miss_n"] == 1920, (
            "the MIMD model must first miss past the knee at n=1920"
        )
        assert mimd["misses_by_n"].get(960, 0) == 0

    def test_sweep_cells_record_margins_and_periods(self):
        with recording() as registry:
            sweep(["ap:staran"], ns=(96,), periods=2)
        snap = registry.snapshot()
        margins = snap["families"]["atm_deadline_margin_seconds"]["series"]
        assert margins, "sweep cells must observe deadline margins"
        # Counters-with-zeros: a clean run still materializes the miss
        # counter so "zero misses" is a readable fact, not an absence.
        assert registry.value(
            "atm_deadline_misses", platform="ap:staran", n_aircraft=96, source="sweep"
        ) == 0.0
        assert registry.value(
            "atm_deadline_periods", platform="ap:staran", n_aircraft=96, source="sweep"
        ) > 0.0


class TestMetricsDeterminism:
    NS = (96, 192)
    MIXED = ["reference", "cuda:gtx-880m", "mimd:xeon-16"]

    def _snapshot(self, jobs, cache=None):
        with recording() as registry:
            sweep(self.MIXED, ns=self.NS, periods=1, jobs=jobs, cache=cache)
        return registry.snapshot(deterministic_only=True)

    def test_snapshot_byte_identical_across_jobs(self):
        assert canonical_json(self._snapshot(1)) == canonical_json(
            self._snapshot(JOBS)
        )

    def test_snapshot_byte_identical_cold_vs_warm_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = self._snapshot(1, cache=cache)
        warm = self._snapshot(1, cache=cache)
        assert cache.hits > 0
        assert canonical_json(cold) == canonical_json(warm)

    def test_aggregate_byte_identical_across_jobs(self):
        def agg(jobs):
            with collecting() as c:
                sweep(self.MIXED, ns=self.NS, periods=1, jobs=jobs)
            return aggregate_spans(c).to_canonical_json(deterministic_only=True)

        assert agg(1) == agg(JOBS)

    def test_report_embeds_deterministic_metrics(self):
        serial = build_report(only=["tbl-deadline"], jobs=1)
        parallel = build_report(only=["tbl-deadline"], jobs=JOBS)
        assert serial["metrics"]["deterministic_only"] is True
        assert "atm_deadline_margin_seconds" in serial["metrics"]["families"]
        # Scheduling-dependent families must not leak into the report.
        assert "atm_shards" not in serial["metrics"]["families"]
        assert canonical_json(serial["metrics"]) == canonical_json(
            parallel["metrics"]
        )


class TestWorkerTraceAdoption:
    def test_pool_worker_spans_land_under_their_shard(self):
        with collecting() as c:
            sweep(["ap:staran", "reference"], ns=(96,), periods=1, jobs=2)
        shards = [s for s in c.spans if s.name == "harness.shard"]
        assert shards, "pool sweep must emit shard spans"
        shard_ids = {s.span_id for s in shards}
        tasks = [s for s in c.spans if s.cat == "task"]
        assert tasks, "worker task spans must be adopted into the parent trace"
        by_id = {s.span_id: s for s in c.spans}

        def has_shard_ancestor(span):
            cur = span
            while cur.parent_id is not None:
                if cur.parent_id in shard_ids:
                    return True
                cur = by_id[cur.parent_id]
            return False

        assert all(has_shard_ancestor(t) for t in tasks)

    def test_adopted_spans_preserve_platform_attribution(self):
        with collecting() as c:
            sweep(["ap:staran"], ns=(96,), periods=1, jobs=2)
        agg = aggregate_spans(c)
        assert "ap:staran" in agg.platforms()
        assert agg.stats[("ap:staran", "task", "task1")].calls == 1


class TestOperationalCounters:
    def test_shard_sources_are_labeled(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with recording() as registry:
            sweep(["reference"], ns=(96, 192), periods=1, jobs=2, cache=cache)
            sweep(["reference"], ns=(96, 192), periods=1, jobs=2, cache=cache)
        assert registry.value("atm_shards", source="pool") == 2.0
        assert registry.value("atm_shards", source="cache") == 2.0

    def test_store_requests_labeled_by_outcome(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with recording() as registry:
            sweep(["reference"], ns=(96,), periods=1, cache=cache)
            sweep(["reference"], ns=(96,), periods=1, cache=cache)
        miss = registry.value("atm_store_requests", store="result", outcome="miss")
        hit = registry.value("atm_store_requests", store="result", outcome="hit")
        stored = registry.value("atm_store_requests", store="result", outcome="store")
        assert (miss, hit, stored) == (1.0, 1.0, 1.0)

    def test_trace_requests_counted(self):
        with recording() as registry:
            sweep(["ap:staran", "reference"], ns=(96,), periods=1)
        total = sum(
            entry["value"]
            for entry in registry.snapshot()["families"]["atm_trace_requests"][
                "series"
            ]
        )
        assert total > 0
