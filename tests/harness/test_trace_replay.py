"""Trace-replay equivalence suite (the shared functional-trace engine).

The contract under test (docs/performance.md): splitting a measurement
cell into one functional pass plus per-backend cost replays is an
*execution* detail — it may never change a byte of the produced data,
whether the trace comes from the in-process memo, the on-disk
:class:`~repro.harness.cache.TraceStore`, or a worker pool.
"""

import json
import os

import pytest

from repro.core.collision import DetectionMode
from repro.core.trace import FunctionalTrace, compute_trace
from repro.harness.cache import TraceStore
from repro.harness.parallel import sweep_options
from repro.harness.sweep import _TRACE_MEMO, measure_platform, sweep
from repro.obs import collecting

JOBS = int(os.environ.get("ATM_REPRO_TEST_JOBS", "4"))

#: one representative of every backend family, plus the reference model.
REPLAY_BACKENDS = [
    "cuda:titan-x-pascal",
    "cuda:gtx-880m",
    "cuda:geforce-9800-gt",
    "ap:staran",
    "simd:clearspeed-csx600",
    "mimd:xeon-16",
    "vector:avx512-16c",
    "reference",
]

#: several (n, seed, mode) cells — n=200 leaves a partial warp/PE stripe.
CELLS = [
    (96, 2018, DetectionMode.SIGNED),
    (200, 2018, DetectionMode.PAPER_ABS),
    (192, 7, DetectionMode.SIGNED),
]


def canon(measurement) -> str:
    return json.dumps(measurement.to_dict(), sort_keys=True)


@pytest.fixture(autouse=True)
def _fresh_memo():
    _TRACE_MEMO.clear()
    yield
    _TRACE_MEMO.clear()


class TestPerBackendEquivalence:
    @pytest.mark.parametrize("backend", REPLAY_BACKENDS)
    @pytest.mark.parametrize("n,seed,mode", CELLS)
    def test_replay_is_byte_identical_to_direct(self, backend, n, seed, mode):
        direct = measure_platform(
            backend, n, seed=seed, periods=2, mode=mode, cache=False, trace=False
        )
        # round-trip the trace through its JSON form on purpose: the
        # pool and the on-disk store both hand backends deserialized
        # payloads, so that is the representation that must be exact.
        trace = FunctionalTrace.from_dict(
            compute_trace(n, seed=seed, periods=2, mode=mode).to_dict()
        )
        replay = measure_platform(
            backend, n, seed=seed, periods=2, mode=mode, cache=False, trace=trace
        )
        assert canon(replay) == canon(direct)


class TestTracePolicy:
    def test_ambient_default_replays_and_memoizes(self):
        assert len(_TRACE_MEMO) == 0
        with collecting() as col:
            first = measure_platform("reference", 96, periods=2, cache=False)
            second = measure_platform("reference", 96, periods=2, cache=False)
        assert len(_TRACE_MEMO) == 1
        assert col.counters.get("harness.trace.computed") == 1
        assert col.counters.get("harness.trace.memo_hits") == 1
        assert canon(first) == canon(second)

    def test_trace_false_runs_direct_without_memoizing(self):
        measure_platform("reference", 96, periods=2, cache=False, trace=False)
        assert len(_TRACE_MEMO) == 0

    def test_mismatched_trace_is_rejected(self):
        trace = compute_trace(96, periods=2)
        with pytest.raises(ValueError):
            measure_platform(
                "reference", 192, periods=2, cache=False, trace=trace
            )
        with pytest.raises(TypeError):
            measure_platform(
                "reference", 96, periods=2, cache=False, trace={"not": "a trace"}
            )

    def test_memo_is_bounded(self):
        from repro.harness.sweep import _TRACE_MEMO_CAPACITY

        for i in range(_TRACE_MEMO_CAPACITY + 4):
            measure_platform("reference", 64 + i, periods=1, cache=False)
        assert len(_TRACE_MEMO) == _TRACE_MEMO_CAPACITY


class TestSweepEquivalence:
    def test_trace_on_and_off_are_byte_identical(self):
        on = sweep(REPLAY_BACKENDS, ns=(96, 192), periods=2, trace=True)
        off = sweep(REPLAY_BACKENDS, ns=(96, 192), periods=2, trace=False)
        assert on.to_canonical_json() == off.to_canonical_json()

    def test_pool_with_traces_matches_serial_without(self):
        serial = sweep(REPLAY_BACKENDS, ns=(96, 192), periods=2, trace=False)
        _TRACE_MEMO.clear()
        pooled = sweep(
            REPLAY_BACKENDS, ns=(96, 192), periods=2, trace=True, jobs=JOBS
        )
        assert pooled.to_canonical_json() == serial.to_canonical_json()

    def test_trace_store_round_trip_is_byte_identical(self, tmp_path):
        store = TraceStore(tmp_path / "traces")
        with sweep_options(traces=store):
            cold = sweep(REPLAY_BACKENDS, ns=(96, 192), periods=2)
            assert store.stores == 2, "one stored trace per fleet size"
            _TRACE_MEMO.clear()  # force the second run through the disk tier
            with collecting() as col:
                warm = sweep(REPLAY_BACKENDS, ns=(96, 192), periods=2)
        assert store.hits == 2
        assert store.stores == 2, "warm run must not re-store traces"
        assert col.counters.get("harness.trace.store_hits") == 2
        assert col.counters.get("harness.trace.computed") is None
        assert warm.to_canonical_json() == cold.to_canonical_json()

    def test_report_bytes_identical_with_and_without_engine(self):
        from repro.harness.report import build_report

        on = build_report(only=["fig5"], trace=True)
        off = build_report(only=["fig5"], trace=False)
        assert json.dumps(on, sort_keys=True) == json.dumps(off, sort_keys=True)
