"""Unit tests for the command-line interface."""

import pytest

from repro.harness.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_subcommands_exist(self):
        parser = build_parser()
        for cmd in ("fig4", "fig9", "tbl-deadline", "abl-fused"):
            args = parser.parse_args([cmd])
            assert args.command == cmd

    def test_ns_option(self):
        args = build_parser().parse_args(["fig4", "--ns", "96", "192"])
        assert args.ns == [96, 192]


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "cuda:titan-x-pascal" in out

    def test_describe(self, capsys):
        assert main(["describe", "cuda:gtx-880m"]) == 0
        out = capsys.readouterr().out
        assert "compute_capability" in out
        assert "peak_throughput_ops_per_s" in out

    def test_describe_reference_zero_peak_sentinel(self, capsys):
        assert main(["describe", "reference"]) == 0
        out = capsys.readouterr().out
        assert "peak_throughput_ops_per_s" in out

    def test_help_epilog_documents_report_flags(self, capsys):
        import pytest as _pytest

        with _pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for flag in ("--only", "--full", "--seed", "--trace"):
            assert flag in out

    def test_run_small_figure(self, capsys):
        assert main(["fig8", "--ns", "96", "192", "288", "480"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out and "verdict" in out

    def test_determinism_args(self, capsys):
        assert main(["tbl-determinism", "--n", "96", "--repeats", "2"]) == 0
        assert "deterministic" in capsys.readouterr().out
