"""Hypothesis property tests on the machine models and analysis tools."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.curvefit import growth_exponent, polynomial_fit
from repro.cuda.device import GTX_880M, TITAN_X_PASCAL
from repro.cuda.execution import WarpLedger
from repro.cuda.grid import LaunchConfig
from repro.cuda.timing import kernel_timing
from repro.mimd.events import WorkChunk, simulate_work_queue
from repro.simd.instructions import Op
from repro.simd.pe_array import PEArray


class TestCurveFitProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(min_value=-10, max_value=10, allow_nan=False),
        st.floats(min_value=0.01, max_value=10, allow_nan=False),
    )
    def test_recovers_exact_lines(self, intercept, slope):
        x = np.linspace(1, 50, 12)
        fit = polynomial_fit(x, slope * x + intercept, 1)
        assert np.isclose(fit.coefficients[0], slope, rtol=1e-6, atol=1e-9)
        assert fit.r_squared > 0.999999

    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(min_value=0.1, max_value=3.0, allow_nan=False),
        st.floats(min_value=0.001, max_value=100.0, allow_nan=False),
    )
    def test_growth_exponent_recovers_power(self, power, scale):
        x = np.array([50.0, 100.0, 200.0, 400.0, 800.0])
        assert np.isclose(growth_exponent(x, scale * x**power), power, atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.001, max_value=100.0), min_size=5, max_size=5))
    def test_quadratic_fit_never_worse_r2(self, ys):
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        y = np.asarray(ys)
        lin = polynomial_fit(x, y, 1)
        quad = polynomial_fit(x, y, 2)
        assert quad.r_squared >= lin.r_squared - 1e-9


class TestPEArrayProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=1, max_value=512),
        st.integers(min_value=1, max_value=5000),
        st.integers(min_value=0, max_value=200),
    )
    def test_cycles_monotone_in_work(self, pes, elements, count):
        pe = PEArray(pes, elements)
        pe.vector(Op.ALU, count)
        before = pe.cycles
        pe.vector(Op.ALU, 1)
        assert pe.cycles > before
        assert pe.stripe == -(-elements // pes)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=5000))
    def test_more_pes_never_slower(self, elements):
        few = PEArray(32, elements)
        many = PEArray(256, elements)
        few.vector(Op.ALU, 10)
        many.vector(Op.ALU, 10)
        assert many.cycles <= few.cycles


class TestCudaModelProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=5000),
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    )
    def test_kernel_time_positive_and_deterministic(self, n, issue):
        cfg = LaunchConfig(n)
        led = WarpLedger(GTX_880M, cfg)
        led.charge_issue(issue)
        a = kernel_timing("k", GTX_880M, cfg, led).seconds
        b = kernel_timing("k", GTX_880M, cfg, led).seconds
        assert a == b >= GTX_880M.kernel_launch_s

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=500, max_value=3000))
    def test_bigger_card_never_slower_when_saturated(self, blocks):
        """Once both devices run multiple full waves, the higher-
        throughput card wins.  (At a single block the Kepler SMX's 192
        cores legitimately beat one Pascal SM — that asymmetry is real
        hardware behaviour, so saturation is part of the property.)"""
        n = blocks * 96
        cfg = LaunchConfig(n)
        led_small = WarpLedger(GTX_880M, cfg)
        led_big = WarpLedger(TITAN_X_PASCAL, cfg)
        led_small.charge_issue(500.0)
        led_big.charge_issue(500.0)
        t_small = kernel_timing("k", GTX_880M, cfg, led_small).compute_seconds
        t_big = kernel_timing("k", TITAN_X_PASCAL, cfg, led_big).compute_seconds
        assert t_big <= t_small


class TestQueueProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=1e-6, max_value=1.0),
            min_size=1,
            max_size=40,
        ),
        st.integers(min_value=1, max_value=32),
    )
    def test_makespan_bounds(self, works, cores):
        chunks = [WorkChunk(w) for w in works]
        result = simulate_work_queue(
            cores,
            chunks,
            pop_cost_s=0.0,
            jitter_sigma=0.0,
            rng=np.random.default_rng(0),
        )
        total = sum(works)
        assert result.makespan_s >= max(works) - 1e-12
        assert result.makespan_s >= total / cores - 1e-12
        assert result.makespan_s <= total + 1e-12

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(min_value=1e-6, max_value=0.5), min_size=1, max_size=30),
    )
    def test_sync_floor(self, syncs):
        """Serialized demand lower-bounds the makespan."""
        chunks = [WorkChunk(0.0, s) for s in syncs]
        result = simulate_work_queue(
            8, chunks, pop_cost_s=0.0, jitter_sigma=0.0,
            rng=np.random.default_rng(0),
        )
        assert result.makespan_s >= sum(syncs) - 1e-9
