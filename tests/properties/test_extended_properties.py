"""Hypothesis property tests on the extended system and workloads."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import constants as C
from repro.extended.advisory import Advisory, AdvisoryChannel, AdvisoryKind
from repro.extended.approach import Runway
from repro.extended.display import ScopeConfig, build_display
from repro.extended.terrain import TerrainGrid
from repro.harness.workloads import crossing_streams, holding_stack

coords = st.floats(min_value=-200.0, max_value=200.0, allow_nan=False)


class TestTerrainProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_elevation_bounds(self, seed):
        grid = TerrainGrid.generate(seed, resolution_nm=8.0)
        assert grid.cells.min() >= 0.0
        assert grid.cells.max() <= grid.peak_ft

    @settings(max_examples=30, deadline=None)
    @given(coords, coords)
    def test_sampling_within_cell_range(self, x, y):
        grid = TerrainGrid.generate(2018, resolution_nm=4.0)
        e = float(grid.elevation_at(x, y))
        assert 0.0 <= e <= grid.peak_ft

    @settings(max_examples=20, deadline=None)
    @given(coords, coords, st.floats(-0.08, 0.08), st.floats(-0.08, 0.08))
    def test_path_max_dominates_endpoint(self, x, y, dx, dy):
        grid = TerrainGrid.generate(2018, resolution_nm=4.0)
        best = grid.max_elevation_along(
            np.array([x]), np.array([y]), np.array([dx]), np.array([dy]),
            periods=360.0, samples=6,
        )[0]
        end = grid.elevation_at(x + dx * 360.0, y + dy * 360.0)
        assert best >= float(end) - 1e-9


class TestAdvisoryProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(list(AdvisoryKind)),
                st.integers(0, 500),
                st.integers(0, 5),
            ),
            max_size=40,
        ),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=4),
    )
    def test_conservation(self, messages, slots, max_age):
        """Every submitted advisory is eventually uttered or dropped."""
        ch = AdvisoryChannel(slots_per_cycle=slots, max_age_cycles=max_age)
        for kind, aircraft, cycle in messages:
            ch.submit(Advisory(kind, aircraft, 0.0, cycle))
        uttered = dropped = 0
        for cycle in range(6, 6 + 20):
            stats = ch.service_cycle(cycle)
            uttered += stats.uttered
            dropped += stats.dropped_stale
            if ch.backlog == 0:
                break
        assert uttered + dropped == len(messages)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=8))
    def test_rate_never_exceeded(self, slots):
        ch = AdvisoryChannel(slots_per_cycle=slots, max_age_cycles=10)
        for i in range(50):
            ch.submit(Advisory(AdvisoryKind.COLLISION, i, 0.0, 0))
        stats = ch.service_cycle(0)
        assert stats.uttered <= slots


class TestDisplayProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=120), st.integers(0, 2**31))
    def test_every_aircraft_gets_a_label(self, n, seed):
        from repro.core.setup import setup_flight

        fleet = setup_flight(n, seed)
        stats = build_display(fleet)
        assert len(stats.label_cells) == n
        assert (
            stats.first_choice_labels
            + stats.moved_labels
            + stats.overlapping_labels
            == n
        )

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=120), st.integers(0, 2**31))
    def test_non_overlapping_labels_are_unique(self, n, seed):
        from repro.core.setup import setup_flight

        fleet = setup_flight(n, seed)
        stats = build_display(fleet)
        placed = stats.label_cells[: n - stats.overlapping_labels]
        # Labels that were "placed" never collide with each other.
        clean = [
            c
            for c, overlap in zip(
                stats.label_cells,
                [False] * (n - stats.overlapping_labels)
                + [True] * stats.overlapping_labels,
            )
            if not overlap
        ]
        # (ordering of label_cells follows aircraft order; the overlap
        # ones are interleaved, so check global uniqueness bound instead)
        assert len(set(stats.label_cells)) >= len(stats.label_cells) - (
            stats.overlapping_labels * 2
        )


class TestWorkloadProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=40))
    def test_crossing_streams_in_bounds(self, n):
        fleet = crossing_streams(n)
        fleet.validate()

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=100))
    def test_holding_stack_clean(self, n):
        from repro.core.collision import detect

        fleet = holding_stack(n)
        fleet.validate()
        assert detect(fleet).critical_conflicts == 0
