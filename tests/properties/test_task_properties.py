"""Hypothesis property tests on the ATM tasks end-to-end."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import constants as C
from repro.core.collision import detect, earliest_critical
from repro.core.radar import generate_radar_frame
from repro.core.resolution import resolve
from repro.core.setup import setup_flight
from repro.core.tracking import correlate

seeds = st.integers(min_value=0, max_value=2**32 - 1)
sizes = st.integers(min_value=1, max_value=80)


class TestTrackingProperties:
    @settings(max_examples=25, deadline=None)
    @given(seeds, sizes)
    def test_correlation_bookkeeping_invariants(self, seed, n):
        fleet = setup_flight(n, seed)
        frame = generate_radar_frame(fleet, seed, 0)
        stats = correlate(fleet, frame)

        # 1. Every radar ends in exactly one of three states.
        assert np.all(
            (frame.match_with >= 0)
            | (frame.match_with == C.NO_MATCH)
            | (frame.match_with == C.DISCARDED)
        )
        # 2. Commit accounting covers the fleet.
        assert stats.committed + stats.coasted == n
        # 3. No two surviving radars point at the same aircraft.
        planes = frame.match_with[frame.match_with >= 0]
        ok = planes[fleet.r_match[planes] == C.MATCHED_ONCE]
        assert np.unique(ok).size == ok.size
        # 4. Fleet stays inside the airfield.
        fleet.validate()

    @settings(max_examples=25, deadline=None)
    @given(seeds, sizes)
    def test_correlation_deterministic(self, seed, n):
        a, b = setup_flight(n, seed), setup_flight(n, seed)
        fa = generate_radar_frame(a, seed, 0)
        fb = generate_radar_frame(b, seed, 0)
        correlate(a, fa)
        correlate(b, fb)
        assert a.state_equal(b)
        assert np.array_equal(fa.match_with, fb.match_with)

    @settings(max_examples=15, deadline=None)
    @given(seeds)
    def test_committed_positions_come_from_radar(self, seed):
        fleet = setup_flight(60, seed)
        frame = generate_radar_frame(fleet, seed, 0)
        correlate(fleet, frame)
        committed = fleet.matched_radar >= 0
        good = committed & (fleet.r_match == C.MATCHED_ONCE)
        radars = fleet.matched_radar[good]
        mine = frame.match_with[radars] == np.nonzero(good)[0]
        # Aircraft whose radar still points back took its exact position
        # (modulo the boundary wraparound mirror).
        xs = fleet.x[good][mine]
        rxs = frame.rx[radars][mine]
        same_magnitude = np.abs(np.abs(xs) - np.abs(rxs)) < 1e-12
        clipped_at_edge = (np.abs(rxs) > C.GRID_HALF_NM) & (
            np.abs(np.abs(xs) - C.GRID_HALF_NM) < 1e-12
        )
        assert np.all(same_magnitude | clipped_at_edge)


class TestResolutionProperties:
    @settings(max_examples=15, deadline=None)
    @given(seeds)
    def test_resolution_invariants(self, seed):
        fleet = setup_flight(64, seed)
        detect(fleet)
        speeds = fleet.speeds_per_period().copy()
        stats = resolve(fleet)

        # Speeds conserved by every manoeuvre.
        assert np.allclose(fleet.speeds_per_period(), speeds)
        # Accounting closes.
        assert stats.resolved + stats.unresolved == stats.needed_resolution
        assert stats.trials_evaluated == stats.attempts.sum()
        assert np.all(stats.attempts <= C.RESOLUTION_MAX_TRIALS)
        # Cleared aircraft have clean collision state.
        clear = fleet.col == 0
        assert np.all(fleet.time_till[clear] == C.TIME_TILL_SAFE_PERIODS)
        assert np.all(fleet.col_with[clear] == C.NO_MATCH)

    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_resolved_aircraft_clear_at_commit(self, seed):
        """Every aircraft that committed a turn was critically clear
        against the state in which it committed; unresolved ones keep
        their original velocity."""
        fleet = setup_flight(64, seed)
        detect(fleet)
        before_dx = fleet.dx.copy()
        stats = resolve(fleet)
        turned = (stats.attempts > 0) & (fleet.col == 0)
        kept = stats.attempts == C.RESOLUTION_MAX_TRIALS
        unresolved_kept = kept & (fleet.col == 1)
        assert np.all(fleet.dx[unresolved_kept] == before_dx[unresolved_kept])
        # Turned aircraft actually changed heading.
        if np.any(turned):
            assert np.any(fleet.dx[turned] != before_dx[turned])


class TestScheduleProperties:
    @settings(max_examples=8, deadline=None)
    @given(seeds)
    def test_major_cycle_accounting(self, seed):
        from repro.backends.reference import ReferenceBackend
        from repro.core.scheduler import run_schedule

        fleet = setup_flight(48, seed)
        result = run_schedule(ReferenceBackend(), fleet, major_cycles=1, seed=seed)
        assert result.total_periods == 16
        for p in result.periods:
            assert p.time_used >= 0
            assert p.slack >= 0
            assert p.time_used + p.slack >= C.PERIOD_SECONDS - 1e-12
            if not p.deadline_missed:
                assert p.time_used <= C.PERIOD_SECONDS
