"""Property tests for the canonicalizer and cost-model fingerprints.

The result cache's correctness rests on three properties of
:mod:`repro.core.canonical`: dict key order never matters, every value
change matters, and a fingerprint computed in one process equals the
same computation in any other (no ``repr``/``id``/hash-randomization
leakage).
"""

import json
import random
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.registry import available_backends, resolve_backend
from repro.core.canonical import canonical_json, canonicalize, fingerprint_of

# JSON-able leaves; text alphabet is kept printable so canonical_json's
# ascii escaping stays an implementation detail rather than a test axis.
_leaves = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(st.characters(min_codepoint=32, max_codepoint=126), max_size=12),
)

_values = st.recursive(
    _leaves,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=20,
)

_dicts = st.dictionaries(st.text(max_size=8), _values, min_size=1, max_size=6)


def _shuffled(d: dict, rng: random.Random) -> dict:
    keys = list(d)
    rng.shuffle(keys)
    return {k: d[k] for k in keys}


class TestKeyOrderInvariance:
    @settings(max_examples=100, deadline=None)
    @given(_dicts, st.integers(min_value=0, max_value=2**31))
    def test_permuted_dicts_fingerprint_identically(self, d, shuffle_seed):
        permuted = _shuffled(d, random.Random(shuffle_seed))
        assert fingerprint_of(permuted) == fingerprint_of(d)

    def test_nested_key_order(self):
        a = {"outer": {"x": 1, "y": {"p": 2.5, "q": [1, 2]}}, "z": 0}
        b = {"z": 0, "outer": {"y": {"q": [1, 2], "p": 2.5}, "x": 1}}
        assert fingerprint_of(a) == fingerprint_of(b)


class TestValueSensitivity:
    @settings(max_examples=100, deadline=None)
    @given(_dicts, st.data())
    def test_any_leaf_change_changes_fingerprint(self, d, data):
        key = data.draw(st.sampled_from(sorted(d)))
        changed = dict(d)
        changed[key] = (
            "__mutated__"
            if changed[key] != "__mutated__"
            else "__mutated_differently__"
        )
        assert fingerprint_of(changed) != fingerprint_of(d)

    def test_list_order_is_significant(self):
        assert fingerprint_of({"a": [1, 2]}) != fingerprint_of({"a": [2, 1]})

    def test_type_of_container_is_significant(self):
        # {} and [] must not collide even when "equally empty".
        assert fingerprint_of({"a": {}}) != fingerprint_of({"a": []})

    def test_small_float_nudges_are_visible(self):
        base = {"clock_ghz": 1.531}
        nudged = {"clock_ghz": 1.531 * (1 + 1e-15)}
        assert fingerprint_of(base) != fingerprint_of(nudged)


class TestNumpyNormalization:
    def test_numpy_scalars_equal_python_scalars(self):
        assert fingerprint_of({"n": np.int64(96)}) == fingerprint_of({"n": 96})
        assert fingerprint_of({"x": np.float64(2.5)}) == fingerprint_of({"x": 2.5})
        assert fingerprint_of({"b": np.bool_(True)}) == fingerprint_of({"b": True})

    def test_tuples_and_arrays_become_lists(self):
        assert canonicalize((1, 2)) == [1, 2]
        assert canonicalize(np.arange(3)) == [0, 1, 2]
        assert fingerprint_of({"shape": (2, 3)}) == fingerprint_of({"shape": [2, 3]})

    def test_sets_are_order_free(self):
        assert fingerprint_of({"s": {3, 1, 2}}) == fingerprint_of({"s": {2, 3, 1}})

    def test_enums_fold_to_values(self):
        from repro.core.collision import DetectionMode

        assert canonicalize(DetectionMode.SIGNED) == DetectionMode.SIGNED.value

    def test_unknown_objects_are_rejected(self):
        with pytest.raises(TypeError, match="canonicalize"):
            canonicalize(object())

    @settings(max_examples=50, deadline=None)
    @given(_values)
    def test_canonical_json_is_always_loadable(self, value):
        loaded = json.loads(canonical_json(value))
        # idempotence: canonical form of the canonical form is itself.
        assert canonical_json(loaded) == canonical_json(value)


class TestCrossProcessStability:
    def test_fingerprint_stable_in_a_fresh_interpreter(self):
        """Same value, different process (fresh hash randomization seed)."""
        payload = {
            "name": "cuda:titan-x-pascal",
            "clock": 1.531,
            "caps": (6, 1),
            "n": np.int64(3840),
            "nested": {"b": [1.5, 2], "a": "text"},
        }
        local = fingerprint_of(payload)
        src = Path(__file__).resolve().parents[2] / "src"
        code = (
            "import numpy as np\n"
            "from repro.core.canonical import fingerprint_of\n"
            "payload = {'name': 'cuda:titan-x-pascal', 'clock': 1.531,"
            " 'caps': (6, 1), 'n': np.int64(3840),"
            " 'nested': {'b': [1.5, 2], 'a': 'text'}}\n"
            "print(fingerprint_of(payload))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": str(src), "PYTHONHASHSEED": "random", "PATH": "/usr/bin:/bin"},
        )
        assert out.stdout.strip() == local

    def test_backend_fingerprints_are_stable_within_process(self):
        for name in available_backends():
            assert resolve_backend(name).fingerprint() == resolve_backend(name).fingerprint(), name

    def test_backend_fingerprints_are_pairwise_distinct(self):
        prints = {name: resolve_backend(name).fingerprint() for name in available_backends()}
        assert len(set(prints.values())) == len(prints), prints
