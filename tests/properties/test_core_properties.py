"""Hypothesis property tests on the core data structures and math."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import constants as C
from repro.core.collision import (
    DetectionMode,
    axis_interval_paper_abs,
    axis_interval_signed,
    detect,
)
from repro.core.geometry import rotate_velocity, wraparound
from repro.core.radar import fourth_reversal_permutation
from repro.core.rng import Stream, random_unit
from repro.core.types import FleetState

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
angle = st.floats(min_value=-360.0, max_value=360.0, allow_nan=False)


class TestGeometryProperties:
    @given(finite, finite, angle)
    def test_rotation_preserves_speed(self, dx, dy, theta):
        rx, ry = rotate_velocity(dx, dy, theta)
        assert np.isclose(np.hypot(rx, ry), np.hypot(dx, dy), atol=1e-6)

    @given(finite, finite, angle)
    def test_rotation_invertible(self, dx, dy, theta):
        rx, ry = rotate_velocity(*rotate_velocity(dx, dy, theta), -theta)
        assert np.isclose(rx, dx, atol=1e-6 * max(1, abs(dx)))
        assert np.isclose(ry, dy, atol=1e-6 * max(1, abs(dy)))

    @given(
        st.floats(min_value=-500, max_value=500, allow_nan=False),
        st.floats(min_value=-500, max_value=500, allow_nan=False),
    )
    def test_wraparound_lands_in_bounds(self, x, y):
        nx, ny = wraparound(np.array([x]), np.array([y]))
        assert abs(nx[0]) <= C.GRID_HALF_NM
        assert abs(ny[0]) <= C.GRID_HALF_NM

    @given(
        st.floats(min_value=-C.GRID_HALF_NM, max_value=C.GRID_HALF_NM),
        st.floats(min_value=-C.GRID_HALF_NM, max_value=C.GRID_HALF_NM),
    )
    def test_wraparound_identity_inside(self, x, y):
        nx, ny = wraparound(np.array([x]), np.array([y]))
        assert nx[0] == x and ny[0] == y


class TestRngProperties:
    @given(st.integers(min_value=0, max_value=2**32), st.integers(0, 2**31))
    def test_unit_interval(self, seed, element):
        u = random_unit(seed, np.array([element]), Stream.SETUP_X)[0]
        assert 0.0 <= u < 1.0

    @given(st.integers(min_value=0, max_value=2**32))
    def test_batch_equals_individual(self, seed):
        ids = np.arange(16)
        batch = random_unit(seed, ids, Stream.SETUP_SPEED)
        singles = np.array(
            [random_unit(seed, np.array([i]), Stream.SETUP_SPEED)[0] for i in ids]
        )
        assert np.array_equal(batch, singles)


class TestShuffleProperties:
    @given(st.integers(min_value=0, max_value=2000))
    def test_permutation(self, n):
        perm = fourth_reversal_permutation(n)
        assert np.array_equal(np.sort(perm), np.arange(n))

    @given(st.integers(min_value=0, max_value=2000))
    def test_involution(self, n):
        perm = fourth_reversal_permutation(n)
        assert np.array_equal(perm[perm], np.arange(n))


band = st.floats(min_value=0.1, max_value=10.0, allow_nan=False)
gap = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)
vel = st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)
times = st.floats(min_value=-5000.0, max_value=5000.0, allow_nan=False)


class TestIntervalProperties:
    @given(gap, vel, band, times)
    def test_signed_window_membership(self, g, v, b, t):
        lo, hi = axis_interval_signed(g, v, b)
        inside = abs(g + v * t) < b
        in_window = lo < t < hi
        # Strict inequalities may disagree exactly on the boundary.
        if abs(abs(g + v * t) - b) > 1e-9:
            assert inside == in_window

    @given(gap, vel, band)
    def test_signed_window_ordering(self, g, v, b):
        lo, hi = axis_interval_signed(g, v, b)
        # Either a well-formed window or an empty marker.
        assert lo <= hi or (lo > hi)

    @given(gap, vel, band)
    def test_paper_abs_window_nonnegative(self, g, v, b):
        lo, hi = axis_interval_paper_abs(g, v, b)
        if lo <= hi:  # non-empty
            assert lo >= 0.0

    @given(gap, vel, band)
    def test_paper_abs_symmetric_in_gap_sign(self, g, v, b):
        a = axis_interval_paper_abs(g, v, b)
        c = axis_interval_paper_abs(-g, v, b)
        assert a == c


@st.composite
def small_fleet_arrays(draw, n=8):
    x = draw(arrays(np.float64, n, elements=st.floats(-100, 100)))
    y = draw(arrays(np.float64, n, elements=st.floats(-100, 100)))
    dx = draw(arrays(np.float64, n, elements=st.floats(-0.08, 0.08)))
    dy = draw(arrays(np.float64, n, elements=st.floats(-0.08, 0.08)))
    alt = draw(arrays(np.float64, n, elements=st.floats(1000, 40000)))
    return x, y, dx, dy, alt


def build_fleet(x, y, dx, dy, alt) -> FleetState:
    f = FleetState.empty(x.shape[0])
    f.x[:], f.y[:], f.dx[:], f.dy[:], f.alt[:] = x, y, dx, dy, alt
    f.batdx[:], f.batdy[:] = dx, dy
    return f


class TestDetectionProperties:
    @settings(max_examples=40, deadline=None)
    @given(small_fleet_arrays())
    def test_detection_symmetric(self, cols):
        """col/time_till are pairwise-symmetric: if i's earliest critical
        partner list includes j, then j is flagged too."""
        fleet = build_fleet(*cols)
        detect(fleet)
        flagged = np.nonzero(fleet.col == 1)[0]
        for i in flagged:
            j = fleet.col_with[i]
            assert fleet.col[j] == 1

    @settings(max_examples=40, deadline=None)
    @given(small_fleet_arrays())
    def test_detection_deterministic(self, cols):
        a = build_fleet(*cols)
        b = build_fleet(*cols)
        detect(a)
        detect(b)
        assert a.state_equal(b)

    @settings(max_examples=40, deadline=None)
    @given(small_fleet_arrays())
    def test_time_till_bounded(self, cols):
        fleet = build_fleet(*cols)
        detect(fleet)
        assert np.all(fleet.time_till >= 0.0)
        assert np.all(fleet.time_till <= C.TIME_TILL_SAFE_PERIODS)

    @settings(max_examples=25, deadline=None)
    @given(small_fleet_arrays())
    def test_paper_abs_flags_superset(self, cols):
        """The abs form can only flag *more* pairs than the signed form
        (it maps receding geometry onto approaching geometry)."""
        a = build_fleet(*cols)
        b = build_fleet(*cols)
        sa = detect(a, DetectionMode.SIGNED)
        sb = detect(b, DetectionMode.PAPER_ABS)
        assert sb.conflicts >= sa.conflicts
