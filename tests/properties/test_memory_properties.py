"""Hypothesis property tests on the memory/coalescing models."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.cuda.device import GEFORCE_9800_GT, TITAN_X_PASCAL
from repro.cuda.memory import TransferModel, transaction_count
from repro.vector.tasks import group_any_counts

lane_indices = arrays(
    np.int64, 32, elements=st.integers(min_value=0, max_value=100_000)
)
lane_mask = arrays(np.bool_, 32)


def as_warp(indices, itemsize=8):
    return (indices * itemsize).reshape(1, 32)


class TestCoalescingProperties:
    @settings(max_examples=60, deadline=None)
    @given(lane_indices)
    def test_modern_tx_bounds(self, idx):
        tx = transaction_count(
            TITAN_X_PASCAL, as_warp(idx), np.ones((1, 32), bool), 8
        )[0]
        assert 1 <= tx <= 32

    @settings(max_examples=60, deadline=None)
    @given(lane_indices)
    def test_strict_tx_bounds(self, idx):
        tx = transaction_count(
            GEFORCE_9800_GT, as_warp(idx), np.ones((1, 32), bool), 8
        )[0]
        # Per half-warp: 1 (coalesced) .. 16 (serialized).
        assert 2 <= tx <= 32

    @settings(max_examples=60, deadline=None)
    @given(lane_indices)
    def test_modern_permutation_invariance(self, idx):
        rng = np.random.default_rng(int(idx.sum()) % 2**31)
        perm = rng.permutation(idx)
        a = transaction_count(TITAN_X_PASCAL, as_warp(idx), np.ones((1, 32), bool), 8)
        b = transaction_count(TITAN_X_PASCAL, as_warp(perm), np.ones((1, 32), bool), 8)
        assert a[0] == b[0]

    @settings(max_examples=60, deadline=None)
    @given(lane_indices, lane_mask)
    def test_masking_never_increases_tx(self, idx, mask):
        full = transaction_count(
            TITAN_X_PASCAL, as_warp(idx), np.ones((1, 32), bool), 8
        )[0]
        masked = transaction_count(
            TITAN_X_PASCAL, as_warp(idx), mask.reshape(1, 32), 8
        )[0]
        assert masked <= full

    @settings(max_examples=40, deadline=None)
    @given(lane_indices)
    def test_strict_never_beats_modern(self, idx):
        """CC 1.x coalescing rules are strictly weaker: never fewer
        transactions than the Fermi+ rule on the same pattern."""
        modern = transaction_count(
            TITAN_X_PASCAL, as_warp(idx), np.ones((1, 32), bool), 8
        )[0]
        # Compare at the same segment granularity by scaling: strict
        # uses 64B segments vs 128B — compare against a 2x allowance.
        strict = transaction_count(
            GEFORCE_9800_GT, as_warp(idx), np.ones((1, 32), bool), 8
        )[0]
        assert strict >= modern / 2


class TestTransferProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10**12))
    def test_monotone_in_bytes(self, n_bytes):
        m = TransferModel(TITAN_X_PASCAL)
        assert m.copy_seconds(n_bytes + 1) > m.copy_seconds(n_bytes) or n_bytes == 0

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=10**9),
        st.integers(min_value=1, max_value=10**9),
    )
    def test_subadditive_batching(self, a, b):
        """One combined copy never costs more than two separate ones
        (each copy pays the PCIe latency)."""
        m = TransferModel(TITAN_X_PASCAL)
        assert m.copy_seconds(a + b) <= m.copy_seconds(a) + m.copy_seconds(b)


class TestGroupAnyProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        arrays(np.float64, st.integers(min_value=1, max_value=64),
               elements=st.floats(0, 40_000)),
        st.sampled_from([8, 16]),
    )
    def test_counts_bounded(self, values, width):
        counts = group_any_counts(values, width, 1000.0)
        n = values.shape[0]
        assert counts.shape[0] == -(-n // width)
        assert np.all(counts >= 0)
        assert np.all(counts <= n)

    @settings(max_examples=40, deadline=None)
    @given(
        arrays(np.float64, 32, elements=st.floats(0, 40_000)),
    )
    def test_group_any_at_least_lane_share(self, values):
        """A group's deep-path count is at least any single lane's
        in-band count (any-lane semantics dominate per-lane)."""
        width = 16
        counts = group_any_counts(values, width, 1000.0)
        for g in range(2):
            lanes = values[g * width : (g + 1) * width]
            for lane_value in lanes:
                lane_count = int(np.count_nonzero(np.abs(values - lane_value) < 1000.0))
                assert counts[g] >= lane_count
