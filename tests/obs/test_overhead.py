"""The no-op mode contract: disabled instrumentation costs ~nothing.

Wall-clock ratio tests are inherently jittery on shared CI machines, so
the hard asserts here are structural (the disabled fast path allocates
nothing and touches no state) with one generously-bounded timing check.
"""

from __future__ import annotations

import time

from repro import obs
from repro.core.radar import generate_radar_frame
from repro.core.setup import setup_flight
from repro.backends.registry import resolve_backend


def test_disabled_span_allocates_nothing():
    assert obs.get_collector() is None
    first = obs.span("hot.path", "cat", k=1)
    for _ in range(100):
        assert obs.span("hot.path") is first  # one shared singleton


def test_disabled_helpers_leave_no_trace():
    assert not obs.is_active()
    with obs.span("a"):
        obs.count("n", 3)
        obs.event("e", note="x")
    collector = obs.activate()
    try:
        assert collector.spans == []
        assert collector.counters == {}
        assert collector.events == []
    finally:
        obs.deactivate()


def test_disabled_span_call_is_cheap():
    # 100k disabled span() calls; generous bound (~2us/call) that only a
    # broken fast path (e.g. allocating a Span per call) would exceed.
    n = 100_000
    t0 = time.perf_counter()
    for _ in range(n):
        with obs.span("x"):
            pass
    elapsed = time.perf_counter() - t0
    assert elapsed < 0.2, f"{elapsed / n * 1e9:.0f} ns per disabled span"


def test_instrumented_task_runs_identically_when_disabled():
    """bench_core_tasks runs with tracing off; the instrumented task
    path must behave exactly as before the obs layer existed."""
    backend = resolve_backend("cuda:titan-x-pascal")
    fleet = setup_flight(192, 2018)
    frame = generate_radar_frame(fleet, 2018, 0)
    timing = backend.track_and_correlate(fleet, frame)
    assert obs.get_collector() is None
    assert timing.detail  # detail is populated even without a collector
    assert sum(timing.detail.values()) > 0
