"""Unit tests for the repro.obs collector: spans, counters, no-op mode."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs import NULL_SPAN, Collector, collecting


class TestSpans:
    def test_span_records_wall_duration(self):
        with collecting() as c:
            with obs.span("work"):
                pass
        (rec,) = c.spans
        assert rec.name == "work"
        assert rec.wall_dur_s >= 0.0
        assert rec.wall_start_s >= 0.0

    def test_nesting_sets_parent_ids(self):
        with collecting() as c:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
                with obs.span("inner"):
                    pass
        inner = c.find("inner")
        (outer,) = c.find("outer")
        assert len(inner) == 2
        assert all(s.parent_id == outer.span_id for s in inner)
        assert outer.parent_id is None
        assert [s.span_id for s in c.children_of(outer.span_id)] == [
            s.span_id for s in inner
        ]
        assert c.roots() == [outer]

    def test_add_modelled_accumulates(self):
        with collecting() as c:
            with obs.span("t") as sp:
                sp.add_modelled(1.0)
                sp.add_modelled(0.5)
        assert c.find("t")[0].modelled_s == pytest.approx(1.5)
        assert c.total_modelled() == pytest.approx(1.5)

    def test_attrs_via_kwargs_and_set(self):
        with collecting() as c:
            with obs.span("t", "cat", device="x") as sp:
                sp.set(bound="compute")
        rec = c.find("t")[0]
        assert rec.cat == "cat"
        assert rec.attrs == {"device": "x", "bound": "compute"}

    def test_span_survives_exception(self):
        with collecting() as c:
            with pytest.raises(RuntimeError):
                with obs.span("boom"):
                    raise RuntimeError("x")
        assert c.find("boom")  # recorded despite the exception
        assert c._stack == []  # and the stack is clean

    def test_span_names_first_seen_order(self):
        with collecting() as c:
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
            with obs.span("a"):
                pass
        assert c.span_names() == ["a", "b"]


class TestCountersAndEvents:
    def test_counters_are_monotonic_sums(self):
        with collecting() as c:
            obs.count("launches")
            obs.count("launches", 2)
            obs.count("bytes", 128.0)
        assert c.counters == {"launches": 3.0, "bytes": 128.0}

    def test_events_record_position_in_tree(self):
        with collecting() as c:
            with obs.span("outer"):
                obs.event("marker", "cat", note="hi")
        (e,) = c.events
        assert e["name"] == "marker"
        assert e["parent"] == c.find("outer")[0].span_id
        assert e["attrs"] == {"note": "hi"}

    def test_clear_drops_everything(self):
        with collecting() as c:
            with obs.span("t") as sp:
                sp.add_modelled(1)
            obs.count("n")
            obs.event("e")
            c.clear()
            assert (c.spans, c.events, c.counters) == ([], [], {})


class TestNoOpMode:
    def test_disabled_span_is_the_shared_singleton(self):
        assert not obs.is_active()
        assert obs.span("anything") is NULL_SPAN
        assert obs.span("other", "cat", k=1) is NULL_SPAN

    def test_null_span_supports_full_protocol(self):
        with obs.span("x") as sp:
            assert sp.set(a=1) is sp
            assert sp.add_modelled(2.0) is sp

    def test_disabled_count_and_event_are_noops(self):
        obs.count("n", 5)
        obs.event("e")  # must not raise, must not record anywhere
        assert obs.get_collector() is None


class TestActivation:
    def test_collecting_restores_previous_collector(self):
        outer = Collector()
        with collecting(outer):
            assert obs.get_collector() is outer
            with collecting() as inner:
                assert obs.get_collector() is inner
                assert inner is not outer
            assert obs.get_collector() is outer
        assert obs.get_collector() is None

    def test_collecting_restores_on_exception(self):
        with pytest.raises(ValueError):
            with collecting():
                raise ValueError("x")
        assert obs.get_collector() is None

    def test_activate_deactivate(self):
        c = obs.activate()
        try:
            assert obs.is_active()
            assert obs.get_collector() is c
        finally:
            assert obs.deactivate() is c
        assert not obs.is_active()

    def test_total_wall_and_category_filter(self):
        with collecting() as c:
            with obs.span("a", "x") as sp:
                sp.add_modelled(1.0)
            with obs.span("b", "y") as sp:
                sp.add_modelled(2.0)
        assert c.total_modelled("x") == pytest.approx(1.0)
        assert c.total_modelled() == pytest.approx(3.0)
        assert c.total_wall() >= c.total_wall("x") >= 0.0


class TestAdoptAndMerge:
    def _worker_trace(self):
        """A shard-local collector the way a pool worker produces one."""
        worker = Collector()
        with worker.span("task1", cat="task", platform="ap:staran") as t:
            t.add_modelled(0.5)
            with worker.span("correlate", cat="kernel") as k:
                k.add_modelled(0.25)
        worker.event("deadline.miss", cat="slo", platform="ap:staran")
        worker.count("kernel.calls", 3.0)
        return worker

    def test_adopt_remaps_ids_and_reparents_roots(self):
        worker = self._worker_trace()
        parent = Collector()
        with parent.span("harness.shard", cat="harness") as shard:
            shard_id = shard.span_id
        id_map = parent.adopt(
            list(worker.spans),
            worker.events,
            worker.counters,
            parent_id=shard_id,
        )
        adopted = {s.span_id: s for s in parent.spans if s.name != "harness.shard"}
        assert set(id_map.values()) == set(adopted)
        task = next(s for s in adopted.values() if s.name == "task1")
        kernel = next(s for s in adopted.values() if s.name == "correlate")
        assert task.parent_id == shard_id
        assert kernel.parent_id == task.span_id
        assert parent.counters["kernel.calls"] == 3.0
        assert parent.events[-1]["name"] == "deadline.miss"

    def test_adopt_remap_survives_children_before_parents(self):
        worker = self._worker_trace()
        # Spans are recorded at close time, so children precede parents
        # in the list already — adopt must remap in two passes.
        spans = sorted(worker.spans, key=lambda s: s.span_id, reverse=True)
        parent = Collector()
        parent.adopt(spans)
        kernel = next(s for s in parent.spans if s.name == "correlate")
        task = next(s for s in parent.spans if s.name == "task1")
        assert kernel.parent_id == task.span_id

    def test_adopt_shifts_wall_times(self):
        worker = self._worker_trace()
        parent = Collector()
        parent.adopt(list(worker.spans), worker.events, wall_offset_s=100.0)
        assert all(s.wall_start_s >= 100.0 for s in parent.spans)
        assert parent.events[-1]["wall_start_s"] >= 100.0

    def test_merge_wraps_in_synthetic_root(self):
        worker = self._worker_trace()
        parent = Collector()
        parent.count("kernel.calls", 1.0)
        root_id = parent.merge(worker)
        root = next(s for s in parent.spans if s.span_id == root_id)
        assert root.cat == "merge"
        assert root.attrs["spans"] == len(worker.spans)
        task = next(s for s in parent.spans if s.name == "task1")
        assert task.parent_id == root_id
        assert parent.counters["kernel.calls"] == 4.0

    def test_span_record_event_round_trip(self):
        worker = self._worker_trace()
        restored = [obs.SpanRecord.from_event(s.to_event()) for s in worker.spans]
        assert restored == worker.spans
