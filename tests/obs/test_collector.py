"""Unit tests for the repro.obs collector: spans, counters, no-op mode."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs import NULL_SPAN, Collector, collecting


class TestSpans:
    def test_span_records_wall_duration(self):
        with collecting() as c:
            with obs.span("work"):
                pass
        (rec,) = c.spans
        assert rec.name == "work"
        assert rec.wall_dur_s >= 0.0
        assert rec.wall_start_s >= 0.0

    def test_nesting_sets_parent_ids(self):
        with collecting() as c:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
                with obs.span("inner"):
                    pass
        inner = c.find("inner")
        (outer,) = c.find("outer")
        assert len(inner) == 2
        assert all(s.parent_id == outer.span_id for s in inner)
        assert outer.parent_id is None
        assert [s.span_id for s in c.children_of(outer.span_id)] == [
            s.span_id for s in inner
        ]
        assert c.roots() == [outer]

    def test_add_modelled_accumulates(self):
        with collecting() as c:
            with obs.span("t") as sp:
                sp.add_modelled(1.0)
                sp.add_modelled(0.5)
        assert c.find("t")[0].modelled_s == pytest.approx(1.5)
        assert c.total_modelled() == pytest.approx(1.5)

    def test_attrs_via_kwargs_and_set(self):
        with collecting() as c:
            with obs.span("t", "cat", device="x") as sp:
                sp.set(bound="compute")
        rec = c.find("t")[0]
        assert rec.cat == "cat"
        assert rec.attrs == {"device": "x", "bound": "compute"}

    def test_span_survives_exception(self):
        with collecting() as c:
            with pytest.raises(RuntimeError):
                with obs.span("boom"):
                    raise RuntimeError("x")
        assert c.find("boom")  # recorded despite the exception
        assert c._stack == []  # and the stack is clean

    def test_span_names_first_seen_order(self):
        with collecting() as c:
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
            with obs.span("a"):
                pass
        assert c.span_names() == ["a", "b"]


class TestCountersAndEvents:
    def test_counters_are_monotonic_sums(self):
        with collecting() as c:
            obs.count("launches")
            obs.count("launches", 2)
            obs.count("bytes", 128.0)
        assert c.counters == {"launches": 3.0, "bytes": 128.0}

    def test_events_record_position_in_tree(self):
        with collecting() as c:
            with obs.span("outer"):
                obs.event("marker", "cat", note="hi")
        (e,) = c.events
        assert e["name"] == "marker"
        assert e["parent"] == c.find("outer")[0].span_id
        assert e["attrs"] == {"note": "hi"}

    def test_clear_drops_everything(self):
        with collecting() as c:
            with obs.span("t") as sp:
                sp.add_modelled(1)
            obs.count("n")
            obs.event("e")
            c.clear()
            assert (c.spans, c.events, c.counters) == ([], [], {})


class TestNoOpMode:
    def test_disabled_span_is_the_shared_singleton(self):
        assert not obs.is_active()
        assert obs.span("anything") is NULL_SPAN
        assert obs.span("other", "cat", k=1) is NULL_SPAN

    def test_null_span_supports_full_protocol(self):
        with obs.span("x") as sp:
            assert sp.set(a=1) is sp
            assert sp.add_modelled(2.0) is sp

    def test_disabled_count_and_event_are_noops(self):
        obs.count("n", 5)
        obs.event("e")  # must not raise, must not record anywhere
        assert obs.get_collector() is None


class TestActivation:
    def test_collecting_restores_previous_collector(self):
        outer = Collector()
        with collecting(outer):
            assert obs.get_collector() is outer
            with collecting() as inner:
                assert obs.get_collector() is inner
                assert inner is not outer
            assert obs.get_collector() is outer
        assert obs.get_collector() is None

    def test_collecting_restores_on_exception(self):
        with pytest.raises(ValueError):
            with collecting():
                raise ValueError("x")
        assert obs.get_collector() is None

    def test_activate_deactivate(self):
        c = obs.activate()
        try:
            assert obs.is_active()
            assert obs.get_collector() is c
        finally:
            assert obs.deactivate() is c
        assert not obs.is_active()

    def test_total_wall_and_category_filter(self):
        with collecting() as c:
            with obs.span("a", "x") as sp:
                sp.add_modelled(1.0)
            with obs.span("b", "y") as sp:
                sp.add_modelled(2.0)
        assert c.total_modelled("x") == pytest.approx(1.0)
        assert c.total_modelled() == pytest.approx(3.0)
        assert c.total_wall() >= c.total_wall("x") >= 0.0
