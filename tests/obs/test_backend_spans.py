"""Every registered backend must emit the mandatory span set.

The contract (docs/observability.md): both task entry points open a
``cat="task"`` span named ``task1`` / ``task23``, child spans attribute
at least 90% of the task's modelled seconds (the profiler's acceptance
bar), the ``TaskTiming.detail`` dict carries the same attribution, and
the whole trace exports as valid Chrome-trace JSON.
"""

from __future__ import annotations

import json

import pytest

from repro.backends.registry import available_backends, resolve_backend
from repro.core.radar import generate_radar_frame
from repro.core.setup import setup_flight
from repro.obs import (
    MANDATORY_TASK_SPANS,
    chrome_trace,
    collecting,
    json_lines,
    modelled_coverage,
)

SEED = 2018


@pytest.fixture(params=available_backends())
def traced_backend(request):
    backend = resolve_backend(request.param)
    fleet = setup_flight(96, SEED)
    frame = generate_radar_frame(fleet, SEED, 0)
    with collecting() as c:
        t1 = backend.track_and_correlate(fleet, frame)
        t23 = backend.detect_and_resolve(fleet)
    return request.param, c, t1, t23


def test_mandatory_task_spans_present(traced_backend):
    name, c, _, _ = traced_backend
    for span_name in MANDATORY_TASK_SPANS:
        spans = c.find(span_name)
        assert spans, f"{name} did not emit {span_name!r}"
        for s in spans:
            assert s.cat == "task"
            assert s.attrs["platform"] == resolve_backend(name).name
            assert s.attrs["n_aircraft"] == 96


def test_task_modelled_time_matches_task_timing(traced_backend):
    name, c, t1, t23 = traced_backend
    assert c.find("task1")[0].modelled_s == pytest.approx(t1.seconds)
    assert c.find("task23")[0].modelled_s == pytest.approx(t23.seconds)


def test_children_attribute_at_least_90_percent(traced_backend):
    name, c, _, _ = traced_backend
    cov = modelled_coverage(c)
    assert cov >= 0.9, f"{name} attribution {cov:.1%} below the 90% bar"


def test_detail_dict_sums_to_task_seconds(traced_backend):
    name, _, t1, t23 = traced_backend
    for timing in (t1, t23):
        assert timing.detail, f"{name} returned an empty detail dict"
        assert sum(timing.detail.values()) == pytest.approx(
            timing.seconds, rel=1e-9
        ), f"{name} {timing.task} detail does not sum to seconds"


def test_exports_are_valid(traced_backend):
    name, c, _, _ = traced_backend
    doc = json.loads(json.dumps(chrome_trace(c)))
    assert doc["traceEvents"]
    for line in json_lines(c).splitlines():
        json.loads(line)


def test_core_algorithm_spans_are_wall_only(traced_backend):
    name, c, _, _ = traced_backend
    core = [s for s in c.spans if s.cat == "core"]
    assert core, f"{name} did not trace the shared core algorithms"
    assert all(s.modelled_s == 0.0 for s in core)


def test_tracing_does_not_change_modelled_times():
    """The observer must not affect the observation (deterministic backends)."""
    for name in ("cuda:titan-x-pascal", "ap:staran", "simd:clearspeed-csx600",
                 "vector:xeon-phi-7250", "reference"):
        backend = resolve_backend(name)
        fleet = setup_flight(96, SEED)
        frame = generate_radar_frame(fleet, SEED, 0)
        bare = backend.track_and_correlate(fleet, frame).seconds
        with collecting():
            traced = backend.track_and_correlate(fleet, frame).seconds
        assert traced == bare, name
