"""Unit tests for the labeled metrics registry and OpenMetrics exposition."""

from __future__ import annotations

import math

import pytest

from repro.core.canonical import canonical_json
from repro.obs.metrics import (
    DEADLINE_MARGIN_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricDecl,
    MetricsRegistry,
    canonical_labels,
    get_registry,
    linear_buckets,
    log_buckets,
    metric_inc,
    metric_observe,
    metric_set,
    metrics_active,
    parse_openmetrics,
    recording,
    to_openmetrics,
)


class TestBuckets:
    def test_linear_buckets_span_inclusive(self):
        bounds = linear_buckets(-0.5, 0.5, 20)
        assert bounds[0] == -0.5 and bounds[-1] == 0.5
        assert len(bounds) == 21
        assert list(bounds) == sorted(bounds)

    def test_log_buckets_are_125_ladder(self):
        bounds = log_buckets(1e-3, 1.0)
        assert bounds[:3] == (1e-3, 2e-3, 5e-3)
        assert bounds[-1] == 1.0

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            linear_buckets(1.0, 0.0, 4)
        with pytest.raises(ValueError):
            log_buckets(0.0, 1.0)


class TestInstruments:
    def test_counter_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_gauge_last_write_wins(self):
        g = Gauge()
        g.set(3.0)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_buckets_and_stats(self):
        h = Histogram((0.0, 1.0, 2.0))
        for v in (-0.5, 0.5, 1.5, 5.0):
            h.observe(v)
        assert h.bucket_counts == [1, 1, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(6.5)
        assert h.min == -0.5 and h.max == 5.0

    def test_histogram_merge_requires_equal_bounds(self):
        a, b = Histogram((1.0, 2.0)), Histogram((1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_histogram_merge_is_lossless(self):
        a, b = Histogram((0.0, 1.0)), Histogram((0.0, 1.0))
        a.observe(-1.0)
        b.observe(0.5)
        b.observe(3.0)
        a.merge(b)
        assert a.count == 3
        assert a.bucket_counts == [1, 1, 1]
        assert a.min == -1.0 and a.max == 3.0

    def test_quantiles_interpolate_within_recorded_range(self):
        h = Histogram(tuple(float(b) for b in range(11)))
        for v in range(1, 11):
            h.observe(v - 0.5)
        assert h.quantile(0.0) == pytest.approx(h.min)
        assert h.quantile(1.0) == pytest.approx(h.max)
        assert 4.0 <= h.quantile(0.5) <= 6.0
        assert math.isnan(Histogram((1.0,)).quantile(0.5))
        assert Histogram((1.0,)).to_dict()["p95"] is None

    def test_histogram_round_trips_through_dict(self):
        h = Histogram(DEADLINE_MARGIN_BUCKETS)
        h.observe(0.42)
        h.observe(-0.1)
        other = Histogram(DEADLINE_MARGIN_BUCKETS)
        other.load(h.to_dict())
        assert other.to_dict() == h.to_dict()


class TestLabels:
    def test_order_and_type_insensitive(self):
        assert canonical_labels({"n": 960, "p": "ap"}) == canonical_labels(
            {"p": "ap", "n": "960"}
        )

    def test_distinct_values_distinct_series(self):
        assert canonical_labels({"n": 960}) != canonical_labels({"n": 1920})


class TestRegistry:
    def test_undeclared_metric_raises(self):
        with pytest.raises(KeyError):
            MetricsRegistry().inc("atm_typo_total")

    def test_kind_mismatch_raises(self):
        r = MetricsRegistry()
        with pytest.raises(TypeError):
            r.set("atm_shards", 1.0)

    def test_declaration_validation(self):
        with pytest.raises(ValueError):
            MetricDecl(name="x", kind="timer", help="")
        with pytest.raises(ValueError):
            MetricDecl(name="x_seconds", kind="histogram", help="")
        with pytest.raises(ValueError):
            MetricDecl(name="x", kind="gauge", help="", unit="seconds")

    def test_inc_value_and_series(self):
        r = MetricsRegistry()
        r.inc("atm_shards", source="pool")
        r.inc("atm_shards", 2.0, source="pool")
        r.inc("atm_shards", source="inline")
        assert r.value("atm_shards", source="pool") == 3.0
        assert r.value("atm_shards", source="inline") == 1.0
        assert r.value("atm_shards", source="cache") is None
        assert len(r.series("atm_shards")) == 2

    def test_snapshot_sorted_and_canonical(self):
        def build(order):
            r = MetricsRegistry()
            for source in order:
                r.inc("atm_shards", source=source)
            r.observe("atm_deadline_margin_seconds", 0.25, platform="ap", n_aircraft=960, period="tracking", source="sweep")
            return r.snapshot()

        a = build(["pool", "inline"])
        b = build(["inline", "pool"])
        assert canonical_json(a) == canonical_json(b)

    def test_deterministic_projection(self):
        r = MetricsRegistry()
        r.inc("atm_shards", source="pool")
        r.inc("atm_deadline_misses", 0.0, platform="ap", n_aircraft=960, source="sweep")
        snap = r.snapshot(deterministic_only=True)
        assert list(snap["families"]) == ["atm_deadline_misses"]
        assert snap["deterministic_only"] is True

    def test_merge_equals_combined_run(self):
        def record(r, values):
            for v in values:
                r.observe("atm_deadline_margin_seconds", v, platform="ap", n_aircraft=960, period="tracking", source="sweep")
                r.inc("atm_deadline_periods", platform="ap", n_aircraft=960, source="sweep")

        whole = MetricsRegistry()
        record(whole, [0.1, 0.2, -0.3, 0.4])
        left, right = MetricsRegistry(), MetricsRegistry()
        record(left, [0.1, 0.2])
        record(right, [-0.3, 0.4])
        left.merge(right)
        assert canonical_json(left.snapshot()) == canonical_json(whole.snapshot())

    def test_load_snapshot_round_trip(self):
        r = MetricsRegistry()
        r.inc("atm_faults", 3.0, kind="timeout")
        r.observe("atm_deadline_margin_seconds", -0.05, platform="mimd", n_aircraft=1920, period="collision", source="sweep")
        restored = MetricsRegistry().load_snapshot(r.snapshot())
        assert canonical_json(restored.snapshot()) == canonical_json(r.snapshot())


class TestNoOpMode:
    def test_helpers_are_noops_without_registry(self):
        assert not metrics_active()
        assert get_registry() is None
        metric_inc("atm_shards", source="pool")
        metric_set("atm_bench_stage_seconds", 1.0, stage="reexec")
        metric_observe("atm_deadline_margin_seconds", 0.1, platform="ap", n_aircraft=1, period="tracking", source="sweep")

    def test_recording_scopes_the_registry(self):
        with recording() as r:
            assert metrics_active() and get_registry() is r
            metric_inc("atm_shards", source="inline")
        assert not metrics_active()
        assert r.value("atm_shards", source="inline") == 1.0

    def test_recording_restores_previous(self):
        with recording() as outer:
            with recording() as inner:
                metric_inc("atm_shards", source="pool")
            assert get_registry() is outer
        assert inner.value("atm_shards", source="pool") == 1.0
        assert outer.value("atm_shards", source="pool") is None


class TestOpenMetrics:
    def _sample_registry(self):
        r = MetricsRegistry()
        r.inc("atm_shards", 4.0, source="pool")
        r.set("atm_bench_stage_seconds", 1.25, stage="reexec")
        for v in (-0.1, 0.2, 0.45):
            r.observe("atm_deadline_margin_seconds", v, platform="mimd:xeon-16", n_aircraft=1920, period="tracking", source="sweep")
        return r

    def test_exposition_shape(self):
        text = to_openmetrics(self._sample_registry().snapshot())
        assert text.endswith("# EOF\n")
        assert "# TYPE atm_shards counter" in text
        assert 'atm_shards_total{source="pool"} 4' in text
        assert "# UNIT atm_deadline_margin_seconds seconds" in text
        assert 'le="+Inf"' in text

    def test_round_trip_parses(self):
        snap = self._sample_registry().snapshot()
        families = parse_openmetrics(to_openmetrics(snap))
        assert families["atm_shards"]["type"] == "counter"
        hist = families["atm_deadline_margin_seconds"]
        counts = [
            v
            for sample_name, labels, v in hist["samples"]
            if labels.get("le") == "+Inf"
        ]
        assert counts == [3.0]

    def test_parse_rejects_missing_eof(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("# TYPE a counter\na_total 1\n")

    def test_parse_rejects_undeclared_sample(self):
        with pytest.raises(ValueError, match="no declared"):
            parse_openmetrics("# TYPE a counter\nb_total 1\n# EOF\n")

    def test_parse_rejects_wrong_suffix(self):
        with pytest.raises(ValueError, match="no declared"):
            parse_openmetrics("# TYPE a counter\na 1\n# EOF\n")

    def test_parse_rejects_non_cumulative_histogram(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 2\n'
            'h_bucket{le="+Inf"} 1\n'
            "h_count 1\n"
            "h_sum 0\n"
            "# EOF\n"
        )
        with pytest.raises(ValueError, match="cumulative"):
            parse_openmetrics(text)

    def test_parse_rejects_missing_inf_bucket(self):
        text = "# TYPE h histogram\n" 'h_bucket{le="1"} 1\n' "# EOF\n"
        with pytest.raises(ValueError, match="Inf"):
            parse_openmetrics(text)

    def test_parse_rejects_count_mismatch(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 2\n'
            "h_count 3\n"
            "# EOF\n"
        )
        with pytest.raises(ValueError, match="_count"):
            parse_openmetrics(text)
