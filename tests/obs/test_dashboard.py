"""Tests for the self-contained HTML dashboard (repro.obs.dashboard)."""

from __future__ import annotations

import re

from repro.obs import Collector, render_dashboard, write_dashboard
from repro.obs.metrics import MetricsRegistry


def _registry() -> MetricsRegistry:
    r = MetricsRegistry()
    for platform, n, margin in (
        ("ap:staran", 960, 0.43),
        ("cuda:titan-x-pascal", 1920, 0.49),
        ("mimd:xeon-16", 1920, -0.07),
    ):
        r.observe(
            "atm_deadline_margin_seconds",
            margin,
            platform=platform,
            n_aircraft=n,
            period="tracking",
            source="sweep",
        )
        r.inc(
            "atm_deadline_misses",
            1.0 if margin < 0 else 0.0,
            platform=platform,
            n_aircraft=n,
            source="sweep",
        )
        r.inc("atm_deadline_periods", platform=platform, n_aircraft=n, source="sweep")
    r.inc("atm_shards", 3.0, source="pool")
    return r


def _report() -> dict:
    return {
        "paper": "ATM accelerator comparison",
        "library_version": "0.0-test",
        "profile": "quick",
        "seed": 2018,
        "python": "3.x",
        "experiments": {
            "fig4": {
                "data": {
                    "ns": [960, 1920],
                    "series": {
                        "cuda:titan-x-pascal": [0.01, 0.02],
                        "ap:staran": [0.2, 0.4],
                        "simd:clearspeed-csx600": [0.1, 0.2],
                        "mimd:xeon-16": [0.3, 0.6],
                    },
                    "title": "Task 1 execution time",
                },
                "rendered": "fig4",
            },
            "ext-vector": {
                "data": {
                    "ns": [960, 1920],
                    "seconds": [0.05, 0.11],
                    "platform": "vector:cray-style",
                },
                "rendered": "ext-vector",
            },
        },
        "metrics": _registry().snapshot(deterministic_only=True),
    }


def _collector() -> Collector:
    c = Collector()
    with c.span("harness.shard", cat="harness"):
        with c.span("task1", cat="task", platform="ap:staran") as t:
            t.add_modelled(0.4)
            with c.span("correlate", cat="kernel") as k:
                k.add_modelled(0.3)
    c.count("trace.memo_hit", 2.0)
    return c


class TestRenderDashboard:
    def test_self_contained_no_external_references(self):
        html = render_dashboard(_report(), collector=_collector())
        assert not re.search(r"https?://", html)
        assert "<script" not in html

    def test_all_platform_families_present(self):
        html = render_dashboard(_report(), collector=_collector())
        for family in ("cuda", "ap", "simd", "mimd", "vector"):
            assert family in html

    def test_sections_render(self):
        html = render_dashboard(
            _report(), snapshot=_registry().snapshot(), collector=_collector()
        )
        assert "<svg" in html
        # Deadline verdicts, margin chart, flamegraph, counter panels.
        assert "mimd:xeon-16" in html
        assert "atm_deadline_margin_seconds" in html
        assert "correlate" in html
        assert "trace.memo_hit" in html

    def test_snapshot_defaults_to_report_metrics(self):
        html = render_dashboard(_report())
        assert "atm_deadline_misses" in html

    def test_empty_report_still_renders(self):
        html = render_dashboard({"experiments": {}, "metrics": {}})
        assert html.startswith("<!DOCTYPE html>") or "<html" in html


class TestWriteDashboard:
    def test_write(self, tmp_path):
        out = tmp_path / "dash.html"
        write_dashboard(str(out), _report(), collector=_collector())
        text = out.read_text(encoding="utf-8")
        assert "<html" in text
        assert not re.search(r"https?://", text)


class TestServiceResilienceFamilies:
    def test_counter_panels_render_the_crash_safety_families(self):
        """The drain/retry/replay families from the crash-safe service
        (docs/service.md) land in the generic counter panels — including
        their explicit zeros."""
        r = _registry()
        r.inc("atm_service_retries", 0.0, endpoint="client", reason="timeout")
        r.inc("atm_service_retries", 3.0, endpoint="client", reason="reset")
        r.set("atm_service_drain_seconds", 1.25)
        for kind in ("restored", "replayed", "dropped"):
            r.inc("atm_service_journal_replayed", 0.0, kind=kind)
        r.inc("atm_service_journal_replayed", 64.0, kind="restored")
        html = render_dashboard(_report(), snapshot=r.snapshot())
        assert "atm_service_retries" in html
        assert "atm_service_drain_seconds" in html
        assert "atm_service_journal_replayed" in html
        # zero-valued series render too (counters-with-zeros)
        assert "timeout" in html and "dropped" in html
