"""Span-tree rendering and modelled-coverage attribution."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs import collecting, modelled_coverage, render_counters, render_span_tree


def _task_with_children(child_fractions):
    with collecting() as c:
        with obs.span("task1", "task") as t:
            for i, frac in enumerate(child_fractions):
                with obs.span(f"part{i}", "x") as sp:
                    sp.add_modelled(frac)
            t.add_modelled(1.0)
    return c


class TestModelledCoverage:
    def test_fully_attributed_task_scores_one(self):
        assert modelled_coverage(_task_with_children([0.6, 0.4])) == pytest.approx(1.0)

    def test_unattributed_half_scores_half(self):
        assert modelled_coverage(_task_with_children([0.5])) == pytest.approx(0.5)

    def test_overattribution_is_capped_at_parent(self):
        # a child claiming more than the parent cannot push coverage past 1
        assert modelled_coverage(_task_with_children([1.7])) == pytest.approx(1.0)

    def test_no_task_spans_means_nothing_to_attribute(self):
        with collecting() as c:
            with obs.span("helper") as sp:
                sp.add_modelled(1.0)
        assert modelled_coverage(c) == 1.0

    def test_averages_across_tasks_weighted_by_modelled(self):
        with collecting() as c:
            with obs.span("task1", "task") as t:  # fully covered, weight 3
                with obs.span("a") as sp:
                    sp.add_modelled(3.0)
                t.add_modelled(3.0)
            with obs.span("task23", "task") as t:  # uncovered, weight 1
                t.add_modelled(1.0)
        assert modelled_coverage(c) == pytest.approx(0.75)


class TestRenderSpanTree:
    def test_merges_same_name_siblings_with_call_count(self):
        with collecting() as c:
            for _ in range(3):
                with obs.span("task1", "task") as t:
                    with obs.span("child") as sp:
                        sp.add_modelled(0.5)
                    t.add_modelled(0.5)
        tree = render_span_tree(c)
        task_line = next(l for l in tree.splitlines() if l.startswith("task1"))
        assert task_line.split()[1] == "3"
        child_line = next(l for l in tree.splitlines() if "child" in l)
        assert child_line.startswith("  ")  # indented under the task
        assert child_line.split()[1] == "3"

    def test_truncates_at_max_spans(self):
        with collecting() as c:
            for i in range(30):
                with obs.span(f"s{i}"):
                    pass
        tree = render_span_tree(c, max_spans=5)
        assert "truncated at 5" in tree

    def test_empty_collector_renders_header_only(self):
        with collecting() as c:
            pass
        tree = render_span_tree(c)
        assert "span" in tree.splitlines()[0]


class TestRenderCounters:
    def test_sorted_and_integers_shown_as_integers(self):
        with collecting() as c:
            obs.count("z.calls", 4)
            obs.count("a.bytes", 2.5)
        out = render_counters(c).splitlines()
        assert out[0].startswith("a.bytes") and out[0].endswith("2.5")
        assert out[1].startswith("z.calls") and out[1].endswith("4")

    def test_no_counters(self):
        with collecting() as c:
            pass
        assert render_counters(c) == "(no counters)"
