"""Span-tree rendering and modelled-coverage attribution."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs import collecting, modelled_coverage, render_counters, render_span_tree


def _task_with_children(child_fractions):
    with collecting() as c:
        with obs.span("task1", "task") as t:
            for i, frac in enumerate(child_fractions):
                with obs.span(f"part{i}", "x") as sp:
                    sp.add_modelled(frac)
            t.add_modelled(1.0)
    return c


class TestModelledCoverage:
    def test_fully_attributed_task_scores_one(self):
        assert modelled_coverage(_task_with_children([0.6, 0.4])) == pytest.approx(1.0)

    def test_unattributed_half_scores_half(self):
        assert modelled_coverage(_task_with_children([0.5])) == pytest.approx(0.5)

    def test_overattribution_is_capped_at_parent(self):
        # a child claiming more than the parent cannot push coverage past 1
        assert modelled_coverage(_task_with_children([1.7])) == pytest.approx(1.0)

    def test_no_task_spans_means_nothing_to_attribute(self):
        with collecting() as c:
            with obs.span("helper") as sp:
                sp.add_modelled(1.0)
        assert modelled_coverage(c) == 1.0

    def test_averages_across_tasks_weighted_by_modelled(self):
        with collecting() as c:
            with obs.span("task1", "task") as t:  # fully covered, weight 3
                with obs.span("a") as sp:
                    sp.add_modelled(3.0)
                t.add_modelled(3.0)
            with obs.span("task23", "task") as t:  # uncovered, weight 1
                t.add_modelled(1.0)
        assert modelled_coverage(c) == pytest.approx(0.75)


class TestRenderSpanTree:
    def test_merges_same_name_siblings_with_call_count(self):
        with collecting() as c:
            for _ in range(3):
                with obs.span("task1", "task") as t:
                    with obs.span("child") as sp:
                        sp.add_modelled(0.5)
                    t.add_modelled(0.5)
        tree = render_span_tree(c)
        task_line = next(l for l in tree.splitlines() if l.startswith("task1"))
        assert task_line.split()[1] == "3"
        child_line = next(l for l in tree.splitlines() if "child" in l)
        assert child_line.startswith("  ")  # indented under the task
        assert child_line.split()[1] == "3"

    def test_truncates_at_max_spans(self):
        with collecting() as c:
            for i in range(30):
                with obs.span(f"s{i}"):
                    pass
        tree = render_span_tree(c, max_spans=5)
        assert "truncated at 5" in tree

    def test_empty_collector_renders_header_only(self):
        with collecting() as c:
            pass
        tree = render_span_tree(c)
        assert "span" in tree.splitlines()[0]


class TestRenderCounters:
    def test_sorted_and_integers_shown_as_integers(self):
        with collecting() as c:
            obs.count("z.calls", 4)
            obs.count("a.bytes", 2.5)
        out = render_counters(c).splitlines()
        assert out[0].startswith("a.bytes") and out[0].endswith("2.5")
        assert out[1].startswith("z.calls") and out[1].endswith("4")

    def test_no_counters(self):
        with collecting() as c:
            pass
        assert render_counters(c) == "(no counters)"


class TestTruncationAccounting:
    def _wide_tree(self):
        """Distinct-name siblings, each with a two-level subtree."""
        with collecting() as c:
            for i in range(6):
                with obs.span(f"top{i}"):
                    with obs.span("mid"):
                        with obs.span("leaf"):
                            pass
        return c

    def test_omitted_counts_dropped_sibling_subtrees(self):
        # 6 top-level groups x 3 lines each = 18 lines total.  With
        # max_spans=4 the renderer emits top0..top2 (3) + top0's "mid"
        # (1), then drops: top0's leaf subtree, top1/top2's subtrees,
        # and the three whole top3..top5 subtrees.
        tree = render_span_tree(self._wide_tree(), max_spans=4)
        assert "truncated at 4 lines; 14 span groups omitted" in tree

    def test_emitted_plus_omitted_is_total(self):
        c = self._wide_tree()
        full = render_span_tree(c)
        total_groups = len(full.splitlines()) - 2  # header + rule
        for max_spans in (1, 2, 4, 7, 17):
            tree = render_span_tree(c, max_spans=max_spans)
            body = [
                l
                for l in tree.splitlines()[2:]
                if not l.startswith("... (truncated")
            ]
            omitted = int(tree.rsplit(";", 1)[1].split()[0])
            assert len(body) + omitted == total_groups

    def test_no_footer_when_everything_fits(self):
        tree = render_span_tree(self._wide_tree(), max_spans=400)
        assert "truncated" not in tree


class TestCounterCoercion:
    def test_int_float_and_bool_values_render(self):
        with collecting() as c:
            pass
        c.counters["i"] = 7
        c.counters["f"] = 2.5
        c.counters["whole"] = 3.0
        c.counters["b"] = True
        out = dict(
            line.split(maxsplit=1) for line in render_counters(c).splitlines()
        )
        assert out["i"] == "7"
        assert out["f"] == "2.5"
        assert out["whole"] == "3"  # no trailing .0
        assert out["b"] == "1"  # bools coerce like their float value


class TestCoverageEdgeCases:
    def test_zero_modelled_parents_score_one(self):
        # Task spans that never charged modelled time have nothing to
        # attribute — coverage must be 1.0, not a division error.
        with collecting() as c:
            with obs.span("task1", "task"):
                with obs.span("child") as sp:
                    sp.add_modelled(0.5)
        assert modelled_coverage(c) == 1.0

    def test_grandchildren_do_not_double_count(self):
        # Only *direct* children attribute to the task; the grandchild's
        # seconds are already inside its parent's.
        with collecting() as c:
            with obs.span("task1", "task") as t:
                t.add_modelled(1.0)
                with obs.span("child") as sp:
                    sp.add_modelled(0.5)
                    with obs.span("grandchild") as g:
                        g.add_modelled(0.5)
        assert modelled_coverage(c) == pytest.approx(0.5)

    def test_registry_wide_coverage_smoke(self):
        # Every registered backend's cost model must stay threaded
        # through the tracer: >= 0.95 of task modelled seconds
        # attributed to sub-spans, for the whole registry.
        from repro.backends.registry import available_backends, resolve_backend
        from repro.core.radar import generate_radar_frame
        from repro.core.setup import setup_flight

        fleet = setup_flight(96, 2018)
        frame = generate_radar_frame(fleet, 2018, 0)
        for name in available_backends():
            backend = resolve_backend(name)
            with collecting() as c:
                backend.track_and_correlate(fleet, frame)
                backend.detect_and_resolve(fleet)
            cov = modelled_coverage(c)
            assert cov >= 0.95, f"{name}: coverage {cov:.3f}"
