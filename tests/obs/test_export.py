"""Exporter tests: Chrome trace format and JSON lines."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import (
    chrome_trace,
    collecting,
    json_lines,
    write_chrome_trace,
    write_json_lines,
)


@pytest.fixture
def trace():
    """A small synthetic trace: task -> (child, child), a counter, an event."""
    with collecting() as c:
        with obs.span("task1", "task", platform="fake") as t:
            with obs.span("fake.alpha", "fake") as sp:
                sp.add_modelled(0.75)
            with obs.span("fake.beta", "fake") as sp:
                sp.add_modelled(0.25)
            t.add_modelled(1.0)
        obs.count("fake.calls", 2)
        obs.event("checkpoint", note="mid")
    return c


class TestChromeTrace:
    def test_round_trips_as_json(self, trace):
        doc = json.loads(json.dumps(chrome_trace(trace)))
        assert doc["displayTimeUnit"] == "ms"
        assert isinstance(doc["traceEvents"], list)

    def test_names_both_timelines(self, trace):
        meta = [e for e in chrome_trace(trace)["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert {"atm-repro", "wall clock", "modelled time"} <= names

    def test_every_span_appears_on_both_timelines(self, trace):
        events = chrome_trace(trace)["traceEvents"]
        for tid in (1, 2):
            xs = {e["name"] for e in events if e["ph"] == "X" and e["tid"] == tid}
            assert {"task1", "fake.alpha", "fake.beta"} <= xs

    def test_modelled_timeline_preserves_nesting(self, trace):
        events = chrome_trace(trace)["traceEvents"]
        modelled = {
            e["name"]: e for e in events if e["ph"] == "X" and e["tid"] == 2
        }
        parent = modelled["task1"]
        for child in ("fake.alpha", "fake.beta"):
            e = modelled[child]
            assert e["ts"] >= parent["ts"]
            assert e["ts"] + e["dur"] <= parent["ts"] + parent["dur"] + 1e-6
        # siblings laid end to end, in order
        assert modelled["fake.beta"]["ts"] == pytest.approx(
            modelled["fake.alpha"]["ts"] + modelled["fake.alpha"]["dur"]
        )

    def test_counter_and_instant_events(self, trace):
        events = chrome_trace(trace)["traceEvents"]
        (counter,) = [e for e in events if e["ph"] == "C"]
        assert counter["name"] == "fake.calls"
        assert counter["args"]["value"] == 2
        (instant,) = [e for e in events if e["ph"] == "i"]
        assert instant["name"] == "checkpoint"

    def test_write_chrome_trace(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), trace)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


class TestJsonLines:
    def test_one_valid_object_per_line(self, trace):
        lines = [json.loads(l) for l in json_lines(trace).splitlines()]
        types = [l["type"] for l in lines]
        assert types.count("span") == len(trace.spans)
        assert types.count("event") == len(trace.events)
        assert types[-1] == "counters"
        assert lines[-1]["values"] == {"fake.calls": 2}

    def test_span_record_fields(self, trace):
        lines = [json.loads(l) for l in json_lines(trace).splitlines()]
        spans = {l["name"]: l for l in lines if l["type"] == "span"}
        child = spans["fake.alpha"]
        assert child["parent"] == spans["task1"]["id"]
        assert child["modelled_s"] == pytest.approx(0.75)
        assert spans["task1"]["attrs"] == {"platform": "fake"}

    def test_write_json_lines(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_json_lines(str(path), trace)
        assert len(path.read_text().splitlines()) == len(trace.spans) + len(
            trace.events
        ) + 1
