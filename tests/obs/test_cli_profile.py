"""CLI smoke tests: atm-repro profile and report --trace."""

from __future__ import annotations

import json

import pytest

from repro.harness.cli import main
from repro.harness.profile import profile_experiment


class TestProfileCommand:
    def test_single_backend_profile(self, capsys, tmp_path):
        trace = tmp_path / "prof.json"
        jsonl = tmp_path / "prof.jsonl"
        rc = main(
            [
                "profile", "fig4",
                "--backend", "cuda:titan-x-pascal",
                "--n", "96", "--periods", "1",
                "--trace", str(trace),
                "--jsonl", str(jsonl),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cuda:titan-x-pascal" in out
        assert "task1" in out and "task23" in out
        assert "wall clock" in out and "modelled time" in out
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        for line in jsonl.read_text().splitlines():
            json.loads(line)

    def test_profile_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            profile_experiment("fig99")

    def test_profile_result_meets_coverage_bar(self):
        result = profile_experiment(
            "fig4", backend="cuda:titan-x-pascal", n=96, periods=1
        )
        assert result.coverage >= 0.9
        rendered = result.render()
        assert "attribution" in rendered
        assert result.collector.find("task1")


class TestReportTrace:
    def test_report_trace_writes_chrome_json(self, capsys, tmp_path):
        trace = tmp_path / "report-trace.json"
        out = tmp_path / "report.json"
        rc = main(
            ["report", "--only", "fig8", "--trace", str(trace), "--out", str(out)]
        )
        assert rc == 0
        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert "task1" in names and "task23" in names
        # the structured report is untouched by tracing
        report = json.loads(out.read_text())
        assert "fig8" in report["experiments"]
