"""Unit tests for span aggregation (repro.obs.aggregate)."""

from __future__ import annotations

from repro.obs import Collector, SpanAggregate, aggregate_spans
from repro.obs.aggregate import NONDETERMINISTIC_CATS, UNATTRIBUTED


def _trace(platform: str, task_modelled: float, kernel_modelled: float) -> Collector:
    """One shard-shaped trace: harness.shard > task > kernel."""
    c = Collector()
    with c.span("harness.shard", cat="harness"):
        with c.span("task1", cat="task", platform=platform) as task:
            task.add_modelled(task_modelled)
            with c.span("correlate", cat="kernel") as k:
                k.add_modelled(kernel_modelled)
    return c


class TestAttribution:
    def test_nearest_ancestor_platform_wins(self):
        agg = aggregate_spans(_trace("cuda:titan-x-pascal", 2.0, 1.5))
        # The kernel span carries no platform attr; it inherits the task's.
        key = ("cuda:titan-x-pascal", "kernel", "correlate")
        assert agg.stats[key].calls == 1
        assert agg.stats[key].modelled_s == 1.5

    def test_own_attr_overrides_ancestor(self):
        c = Collector()
        with c.span("task1", cat="task", platform="ap:staran"):
            with c.span("oracle", cat="kernel", platform="oracle"):
                pass
        agg = aggregate_spans(c)
        assert ("oracle", "kernel", "oracle") in agg.stats
        assert ("ap:staran", "kernel", "oracle") not in agg.stats

    def test_unattributed_fallback(self):
        c = Collector()
        with c.span("setup", cat="harness"):
            pass
        agg = aggregate_spans(c)
        assert agg.platforms() == [UNATTRIBUTED]

    def test_harness_span_inherits_shard_platform(self):
        c = Collector()
        with c.span("harness.shard", cat="harness", platform="simd:clearspeed-csx600"):
            with c.span("retry", cat="harness"):
                pass
        agg = aggregate_spans(c)
        assert ("simd:clearspeed-csx600", "harness", "retry") in agg.stats


class TestMerge:
    def test_merge_equals_combined(self):
        a = aggregate_spans(_trace("ap:staran", 1.0, 0.75))
        b = aggregate_spans(_trace("ap:staran", 2.0, 1.25))
        combined = SpanAggregate()
        combined.add_collector(_trace("ap:staran", 1.0, 0.75))
        combined.add_collector(_trace("ap:staran", 2.0, 1.25))
        merged = a.merge(b)
        # Wall seconds are real clock readings (the two builds traced at
        # different moments), so compare the deterministic projection.
        assert merged.to_canonical_json(
            deterministic_only=True
        ) == combined.to_canonical_json(deterministic_only=True)
        assert merged.stats[("ap:staran", "task", "task1")].calls == 2

    def test_merge_keeps_coverage_exact(self):
        a = aggregate_spans(_trace("mimd:xeon-16", 4.0, 1.0))   # coverage 0.25
        b = aggregate_spans(_trace("mimd:xeon-16", 4.0, 3.0))   # coverage 0.75
        a.merge(b)
        assert a.modelled_coverage("mimd:xeon-16") == 0.5

    def test_merge_disjoint_platforms(self):
        a = aggregate_spans(_trace("ap:staran", 1.0, 1.0))
        b = aggregate_spans(_trace("cuda:titan-x-pascal", 1.0, 1.0))
        a.merge(b)
        # harness.shard has no platform attr, so the unattributed bucket
        # appears alongside the two real platforms.
        assert a.platforms() == [UNATTRIBUTED, "ap:staran", "cuda:titan-x-pascal"]


class TestDeterministicProjection:
    def test_drops_scheduling_dependent_cats_and_wall(self):
        c = Collector()
        with c.span("harness.shard", cat="harness"):
            with c.span("simulate", cat="core"):
                pass
            with c.span("task1", cat="task", platform="ap:staran") as t:
                t.add_modelled(1.0)
        d = aggregate_spans(c).to_dict(deterministic_only=True)
        flat = [name for spans in d["spans"].values() for name in spans]
        assert flat == ["task:task1"]
        entry = d["spans"]["ap:staran"]["task:task1"]
        assert "wall_s" not in entry
        assert entry["calls"] == 1

    def test_full_projection_keeps_everything(self):
        agg = aggregate_spans(_trace("ap:staran", 1.0, 0.5))
        d = agg.to_dict()
        assert "harness:harness.shard" in d["spans"][UNATTRIBUTED] or any(
            "harness.shard" in name
            for spans in d["spans"].values()
            for name in spans
        )
        entry = d["spans"]["ap:staran"]["task:task1"]
        assert "wall_s" in entry

    def test_core_is_nondeterministic(self):
        # The functional simulation runs wherever the scheduler put it —
        # parent, worker, or nowhere (warm trace store) — so "core" must
        # stay out of the deterministic projection.
        assert "core" in NONDETERMINISTIC_CATS


class TestCoverage:
    def test_coverage_ratio(self):
        agg = aggregate_spans(_trace("ap:staran", 2.0, 0.5))
        assert agg.modelled_coverage("ap:staran") == 0.25

    def test_coverage_clamps_overattribution(self):
        # Child spans claiming more modelled time than the task cannot
        # push coverage above 1.0.
        agg = aggregate_spans(_trace("ap:staran", 1.0, 5.0))
        assert agg.modelled_coverage("ap:staran") == 1.0

    def test_unknown_platform_is_fully_covered(self):
        assert SpanAggregate().modelled_coverage("nope") == 1.0
