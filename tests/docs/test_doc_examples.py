"""Execute the Python code blocks embedded in the documentation.

Every ```python block in the checked documents runs, in order, in one
shared namespace per document (later blocks may build on earlier ones,
as they do when a reader follows the page top to bottom).  Marked
``docs`` so the check can be invoked alone: ``make docs-check`` /
``pytest -m docs``.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: documents whose ```python blocks must execute cleanly.
CHECKED_DOCS = (
    "docs/architecture.md",
    "docs/observability.md",
    "docs/parallel-and-caching.md",
    "docs/performance.md",
    "docs/robustness.md",
    "docs/search.md",
    "docs/service.md",
)

_BLOCK_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def extract_python_blocks(path: Path):
    return _BLOCK_RE.findall(path.read_text(encoding="utf-8"))


@pytest.mark.docs
@pytest.mark.parametrize("relpath", CHECKED_DOCS)
def test_document_code_blocks_execute(relpath):
    path = REPO_ROOT / relpath
    blocks = extract_python_blocks(path)
    assert blocks, f"{relpath} has no ```python blocks to check"
    namespace: dict = {}
    for i, block in enumerate(blocks):
        code = compile(block, f"<{relpath} block {i}>", "exec")
        try:
            exec(code, namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(f"{relpath} block {i} raised {exc!r}:\n{block}")


@pytest.mark.docs
def test_readme_lists_every_cli_subcommand():
    """The README's CLI reference table must cover every subcommand."""
    import argparse

    from repro.harness.cli import build_parser

    parser = build_parser()
    subparsers = next(
        action
        for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    commands = set(subparsers.choices)
    assert commands, "CLI exposes no subcommands?"
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    missing = {name for name in commands if f"`{name}`" not in readme}
    assert not missing, (
        f"README.md CLI reference is missing subcommands: {sorted(missing)}"
    )


@pytest.mark.docs
def test_documented_span_names_exist():
    """Span names cited in the docs must match what backends emit."""
    from repro.backends.registry import resolve_backend
    from repro.core.radar import generate_radar_frame
    from repro.core.setup import setup_flight
    from repro.obs import collecting

    emitted = set()
    for name in ("cuda:titan-x-pascal", "ap:staran", "mimd:xeon-16",
                 "simd:clearspeed-csx600", "vector:xeon-phi-7250", "reference"):
        backend = resolve_backend(name)
        fleet = setup_flight(96, 2018)
        frame = generate_radar_frame(fleet, 2018, 0)
        with collecting() as c:
            backend.track_and_correlate(fleet, frame)
            backend.detect_and_resolve(fleet)
        emitted |= set(c.span_names()) | set(c.counters)

    text = (REPO_ROOT / "docs" / "observability.md").read_text()
    cited = set(re.findall(r"`((?:task|core|reference|cuda|simd|ap|mimd|vector)\.[\w.]+|task1|task23)`", text))
    # wildcard families and setup-only spans are cited but not emitted here
    uncheckable = {
        n for n in cited if "*" in n
    } | {"cuda.kernel.SetupFlight", "cuda.transfer.drone_struct"}
    missing = cited - uncheckable - emitted
    assert not missing, f"docs cite spans nothing emits: {sorted(missing)}"
