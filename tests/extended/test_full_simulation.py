"""Unit tests for the FullAtmSimulation façade."""

import numpy as np
import pytest

from repro.extended import FullAtmSimulation, Runway, TerrainGrid
from repro.harness.workloads import terminal_area


class TestConstruction:
    def test_defaults(self):
        sim = FullAtmSimulation(64)
        assert sim.n_aircraft == 64
        assert sim.backend.name == "reference"
        assert sim.terrain.seed == 2018

    def test_custom_fleet(self):
        fleet = terminal_area(40, 4)
        sim = FullAtmSimulation(44, fleet=fleet)
        assert sim.fleet is fleet

    def test_fleet_size_mismatch(self):
        fleet = terminal_area(40, 4)
        with pytest.raises(ValueError, match="expected"):
            FullAtmSimulation(99, fleet=fleet)

    def test_substrates_shared(self):
        grid = TerrainGrid.generate(7)
        runway = Runway(x=10.0)
        sim = FullAtmSimulation(32, terrain=grid, runway=runway)
        assert sim.terrain is grid
        assert sim.runway is runway


class TestRunning:
    def test_run_full_table(self):
        sim = FullAtmSimulation(96, backend="cuda:gtx-880m")
        result = sim.run(major_cycles=2)
        assert result.total_periods == 32
        assert result.missed_deadlines == 0
        for task in ("task1", "task23", "terrain", "approach", "display"):
            assert result.task_times(task).size > 0

    def test_channel_persists_between_runs(self):
        sim = FullAtmSimulation(256, backend="cuda:gtx-880m")
        sim.run(major_cycles=1)
        backlog_first = sim.advisory_backlog()
        sim.run(major_cycles=1)
        # The channel object carried over (same instance, still serving).
        assert sim.advisory_backlog() >= 0
        assert isinstance(backlog_first, int)

    def test_terrain_clearance(self):
        sim = FullAtmSimulation(128)
        clearance = sim.terrain_clearance_ft()
        assert clearance.shape == (128,)
        # setup_flight floors altitude at 1000 ft and the terrain tops
        # out below its peak: clearance can be negative only where an
        # aircraft spawned under a ridge — check the field is sane.
        assert np.all(np.isfinite(clearance))

    def test_deterministic_across_instances(self):
        a = FullAtmSimulation(96, backend="ap:staran", seed=5)
        b = FullAtmSimulation(96, backend="ap:staran", seed=5)
        ra = a.run()
        rb = b.run()
        assert a.fleet.state_equal(b.fleet)
        assert ra.summary() == rb.summary()

    def test_clutter_and_dropout_accepted(self):
        sim = FullAtmSimulation(64, radar_clutter=16, radar_dropout=0.1)
        result = sim.run()
        assert result.total_periods == 16
