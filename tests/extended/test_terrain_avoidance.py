"""Unit tests for the terrain-avoidance task."""

import numpy as np
import pytest

from repro.core.types import FleetState
from repro.extended.terrain import TerrainGrid
from repro.extended.terrain_avoidance import (
    CLIMB_MARGIN_FT,
    CLIMB_PER_CYCLE_FT,
    MIN_CLEARANCE_FT,
    check_terrain,
)


@pytest.fixture(scope="module")
def grid():
    return TerrainGrid.generate(2018)


def fleet_at(x, y, alt, dx=0.0, dy=0.0):
    f = FleetState.empty(len(x))
    f.x[:] = x
    f.y[:] = y
    f.alt[:] = alt
    f.dx[:] = dx
    f.dy[:] = dy
    f.batdx[:] = f.dx
    f.batdy[:] = f.dy
    return f


def highest_cell(grid):
    i, j = np.unravel_index(np.argmax(grid.cells), grid.cells.shape)
    return (-128.0 + i, -128.0 + j, grid.cells[i, j])


class TestCheckTerrain:
    def test_high_flyer_is_clear(self, grid):
        fleet = fleet_at([0.0], [0.0], [39_000.0])
        stats = check_terrain(fleet, grid)
        assert stats.violations == 0
        assert stats.climb_applied_ft == 0.0
        assert fleet.alt[0] == 39_000.0

    def test_low_flyer_over_ridge_gets_climb(self, grid):
        x, y, elev = highest_cell(grid)
        fleet = fleet_at([x], [y], [elev + 100.0])  # clearance 100 < 1000
        stats = check_terrain(fleet, grid)
        assert stats.violations == 1
        assert stats.advisories == 1
        assert fleet.alt[0] == pytest.approx(elev + 100.0 + CLIMB_PER_CYCLE_FT)

    def test_climb_is_rate_limited(self, grid):
        x, y, elev = highest_cell(grid)
        fleet = fleet_at([x], [y], [elev + 100.0])
        check_terrain(fleet, grid)
        # One pass climbs at most CLIMB_PER_CYCLE_FT.
        assert fleet.alt[0] - (elev + 100.0) <= CLIMB_PER_CYCLE_FT + 1e-9

    def test_repeated_passes_reach_safety(self, grid):
        x, y, elev = highest_cell(grid)
        fleet = fleet_at([x], [y], [elev + 100.0])
        for _ in range(40):
            stats = check_terrain(fleet, grid)
            if stats.violations == 0:
                break
        assert stats.violations == 0
        assert fleet.alt[0] >= elev + MIN_CLEARANCE_FT

    def test_small_violation_clears_in_one_pass(self, grid):
        x, y, elev = highest_cell(grid)
        # 50 ft short of the MOC: one bounded climb step suffices.
        fleet = fleet_at([x], [y], [elev + MIN_CLEARANCE_FT - 50.0])
        first = check_terrain(fleet, grid)
        assert first.violations == 1
        second = check_terrain(fleet, grid)
        assert second.violations == 0

    def test_lookahead_catches_ridge_ahead(self, grid):
        x, y, elev = highest_cell(grid)
        # Aircraft 20 nm west of the ridge, flying east at 0.1 nm/period
        # covers 36 nm in the 360-period look-ahead: the ridge is in scope.
        fleet = fleet_at([x - 20.0], [y], [elev + 200.0], dx=0.1)
        stats = check_terrain(fleet, grid)
        assert stats.violations == 1

    def test_stats_shapes(self, grid):
        from repro.core.setup import setup_flight

        fleet = setup_flight(100, 2018)
        stats = check_terrain(fleet, grid)
        assert stats.aircraft_checked == 100
        assert stats.violation_mask.shape == (100,)
        assert stats.violations == int(stats.violation_mask.sum())
        assert len(stats.advisory_targets) == stats.advisories

    def test_altitude_only_moves_up(self, grid):
        from repro.core.setup import setup_flight

        fleet = setup_flight(200, 2018)
        before = fleet.alt.copy()
        check_terrain(fleet, grid)
        assert np.all(fleet.alt >= before)
