"""Unit tests for the voice advisory channel."""

import pytest

from repro.extended.advisory import Advisory, AdvisoryChannel, AdvisoryKind


def adv(kind=AdvisoryKind.COLLISION, aircraft=0, cycle=0, payload=0.0):
    return Advisory(kind=kind, aircraft=aircraft, payload=payload, issued_cycle=cycle)


class TestChannel:
    def test_rate_limit(self):
        ch = AdvisoryChannel(slots_per_cycle=2)
        ch.submit_many(adv(aircraft=i) for i in range(5))
        stats = ch.service_cycle(0)
        assert stats.uttered == 2
        assert stats.backlog == 3

    def test_priority_order(self):
        ch = AdvisoryChannel(slots_per_cycle=1)
        ch.submit(adv(AdvisoryKind.APPROACH, aircraft=1))
        ch.submit(adv(AdvisoryKind.TERRAIN, aircraft=2))
        ch.submit(adv(AdvisoryKind.COLLISION, aircraft=3))
        stats = ch.service_cycle(0)
        assert stats.uttered_by_kind == {"COLLISION": 1}

    def test_fifo_within_priority(self):
        ch = AdvisoryChannel(slots_per_cycle=1, max_age_cycles=5)
        ch.submit(adv(aircraft=1, cycle=0))
        ch.submit(adv(aircraft=2, cycle=1))
        stats = ch.service_cycle(1)
        assert stats.uttered == 1
        assert stats.max_delay_cycles == 1  # the cycle-0 message went first

    def test_stale_dropped(self):
        ch = AdvisoryChannel(slots_per_cycle=4, max_age_cycles=2)
        ch.submit(adv(aircraft=1, cycle=0))
        stats = ch.service_cycle(5)
        assert stats.uttered == 0
        assert stats.dropped_stale == 1
        assert stats.backlog == 0

    def test_backlog_purged_of_stale(self):
        ch = AdvisoryChannel(slots_per_cycle=1, max_age_cycles=1)
        ch.submit_many(adv(aircraft=i, cycle=0) for i in range(4))
        stats = ch.service_cycle(2)  # all too old
        assert stats.uttered == 0
        assert stats.dropped_stale == 4
        assert ch.backlog == 0

    def test_drain_over_cycles(self):
        ch = AdvisoryChannel(slots_per_cycle=2, max_age_cycles=10)
        ch.submit_many(adv(aircraft=i) for i in range(6))
        total = 0
        for cycle in range(3):
            total += ch.service_cycle(cycle).uttered
        assert total == 6
        assert ch.backlog == 0

    def test_submit_many_counts(self):
        ch = AdvisoryChannel()
        assert ch.submit_many(adv(aircraft=i) for i in range(3)) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            AdvisoryChannel(slots_per_cycle=0)
        with pytest.raises(ValueError):
            AdvisoryChannel(max_age_cycles=0)

    def test_empty_service(self):
        stats = AdvisoryChannel().service_cycle(0)
        assert stats.queued == 0
        assert stats.uttered == 0
