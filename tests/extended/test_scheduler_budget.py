"""Extended-scheduler budget rules: skips and advisory flow."""

import numpy as np
import pytest

from repro.backends.base import Backend
from repro.core import constants as C
from repro.core.collision import DetectionMode
from repro.core.setup import setup_flight
from repro.core.types import FleetState, RadarFrame, TaskTiming
from repro.extended import AdvisoryChannel, TerrainGrid, run_extended_schedule
from repro.extended.scheduler import TERRAIN_PERIOD


class SlowTask1Backend(Backend):
    """Task 1 eats the whole period: every other task must be skipped."""

    name = "slow-fake"

    def __init__(self, task1_s: float):
        self.task1_s = task1_s

    def track_and_correlate(self, fleet: FleetState, frame: RadarFrame) -> TaskTiming:
        return TaskTiming("task1", self.name, fleet.n, self.task1_s)

    def detect_and_resolve(self, fleet, mode=DetectionMode.SIGNED) -> TaskTiming:
        return TaskTiming("task23", self.name, fleet.n, 0.001)


@pytest.fixture(scope="module")
def grid():
    return TerrainGrid.generate(2018, resolution_nm=4.0)


class TestSkipRules:
    def test_everything_skipped_when_task1_overruns(self, grid):
        fleet = setup_flight(32, 2018)
        res = run_extended_schedule(
            SlowTask1Backend(0.6), fleet, terrain=grid, major_cycles=1
        )
        assert res.missed_deadlines == 16
        skipped = {s for p in res.periods for s in p.skipped}
        assert skipped == {"advisory", "display", "approach", "terrain", "task23"}
        # Only task1 timings exist.
        assert res.task_times("terrain").size == 0
        assert res.task_times("task23").size == 0

    def test_nothing_skipped_with_fast_backend(self, grid):
        fleet = setup_flight(32, 2018)
        res = run_extended_schedule(
            SlowTask1Backend(0.001), fleet, terrain=grid, major_cycles=1
        )
        assert res.skipped_tasks == 0
        assert res.missed_deadlines == 0

    def test_skip_counts_as_miss(self, grid):
        fleet = setup_flight(32, 2018)
        res = run_extended_schedule(
            SlowTask1Backend(C.PERIOD_SECONDS), fleet, terrain=grid
        )
        terrain_period = [p for p in res.periods if p.period == TERRAIN_PERIOD][0]
        assert "terrain" in terrain_period.skipped
        assert terrain_period.deadline_missed


class TestAdvisoryFlow:
    def test_unresolved_conflicts_reach_the_channel(self, grid):
        """Collision advisories queue in cycle k and are spoken at the
        start of cycle k+1."""
        from repro.backends.registry import resolve_backend
        from repro.harness.workloads import crossing_streams

        fleet = crossing_streams(24)  # dense: some conflicts stay unresolved
        channel = AdvisoryChannel(slots_per_cycle=2, max_age_cycles=3)
        res = run_extended_schedule(
            resolve_backend("cuda:titan-x-pascal"),
            fleet,
            terrain=grid,
            channel=channel,
            major_cycles=2,
        )
        # Cycle 0 period 15 found unresolved conflicts...
        first_cd = [
            t
            for p in res.periods
            if p.major_cycle == 0
            for t in p.tasks
            if t.task == "task23"
        ][0]
        assert first_cd.stats["unresolved"] > 0
        # ...so cycle 1's advisory service had something to say.
        second_ava = [
            t
            for p in res.periods
            if p.major_cycle == 1
            for t in p.tasks
            if t.task == "advisory"
        ][0]
        assert second_ava.stats["uttered"] > 0

    def test_channel_backlog_bounded_by_staleness(self, grid):
        from repro.backends.registry import resolve_backend
        from repro.harness.workloads import crossing_streams

        fleet = crossing_streams(24)
        channel = AdvisoryChannel(slots_per_cycle=1, max_age_cycles=1)
        run_extended_schedule(
            resolve_backend("cuda:titan-x-pascal"),
            fleet,
            terrain=grid,
            channel=channel,
            major_cycles=4,
        )
        # With aggressive staleness the backlog cannot grow without bound.
        assert channel.backlog < 200
