"""Unit tests for the synthetic terrain substrate."""

import numpy as np
import pytest

from repro.core import constants as C
from repro.extended.terrain import TerrainGrid


@pytest.fixture(scope="module")
def grid():
    return TerrainGrid.generate(2018)


class TestGeneration:
    def test_deterministic(self, grid):
        again = TerrainGrid.generate(2018)
        assert np.array_equal(grid.cells, again.cells)

    def test_seed_changes_landscape(self, grid):
        other = TerrainGrid.generate(2019)
        assert not np.array_equal(grid.cells, other.cells)

    def test_elevation_range(self, grid):
        assert grid.cells.min() >= 0.0
        assert grid.cells.max() <= grid.peak_ft

    def test_has_flat_lowland_and_ridges(self, grid):
        s = grid.stats()
        assert s["flat_fraction"] > 0.2  # plenty of safe lowland
        assert s["max_ft"] > 0.5 * grid.peak_ft  # real ridges exist

    def test_resolution_controls_side(self):
        coarse = TerrainGrid.generate(1, resolution_nm=4.0)
        assert coarse.side == 65

    def test_validation(self):
        with pytest.raises(ValueError):
            TerrainGrid.generate(1, resolution_nm=0.0)
        with pytest.raises(ValueError):
            TerrainGrid.generate(1, peak_ft=-1.0)


class TestSampling:
    def test_matches_cells_at_nodes(self, grid):
        # Grid node (i, j) sits at airfield (-128 + i, -128 + j).
        for i, j in ((0, 0), (10, 20), (256, 256)):
            x = -C.GRID_HALF_NM + i
            y = -C.GRID_HALF_NM + j
            assert grid.elevation_at(x, y) == pytest.approx(grid.cells[i, j])

    def test_bilinear_between_nodes(self, grid):
        a = grid.cells[100, 100]
        b = grid.cells[101, 100]
        mid = grid.elevation_at(-C.GRID_HALF_NM + 100.5, -C.GRID_HALF_NM + 100)
        lo, hi = min(a, b), max(a, b)
        assert lo - 1e-9 <= mid <= hi + 1e-9

    def test_out_of_bounds_clamps(self, grid):
        inside = grid.elevation_at(C.GRID_HALF_NM, 0.0)
        outside = grid.elevation_at(C.GRID_HALF_NM + 50, 0.0)
        assert outside == pytest.approx(inside)

    def test_vectorised(self, grid):
        xs = np.linspace(-100, 100, 50)
        ys = np.zeros(50)
        elev = grid.elevation_at(xs, ys)
        assert elev.shape == (50,)
        assert np.all(elev >= 0)


class TestPathMaximum:
    def test_stationary_aircraft(self, grid):
        here = grid.elevation_at(10.0, 10.0)
        along = grid.max_elevation_along(
            np.array([10.0]), np.array([10.0]),
            np.array([0.0]), np.array([0.0]),
            periods=360, samples=12,
        )
        assert along[0] == pytest.approx(here)

    def test_dominates_pointwise_samples(self, grid):
        x, y, dx, dy = 0.0, 0.0, 0.02, 0.01
        best = grid.max_elevation_along(
            np.array([x]), np.array([y]), np.array([dx]), np.array([dy]),
            periods=360, samples=12,
        )[0]
        for k in range(1, 13):
            t = 360 * k / 12
            assert best >= grid.elevation_at(x + dx * t, y + dy * t) - 1e-9

    def test_more_samples_never_lower(self, grid):
        args = (
            np.array([-50.0]), np.array([30.0]),
            np.array([0.05]), np.array([-0.02]),
        )
        coarse = grid.max_elevation_along(*args, periods=360, samples=3)[0]
        # Not strictly monotone in general, but the sample set of 12
        # includes t=120,240,360 = the 3-sample set, so 12 >= 3 here.
        fine = grid.max_elevation_along(*args, periods=360, samples=12)[0]
        assert fine >= coarse - 1e-9

    def test_sample_validation(self, grid):
        with pytest.raises(ValueError):
            grid.max_elevation_along(
                np.zeros(1), np.zeros(1), np.zeros(1), np.zeros(1),
                periods=360, samples=0,
            )
