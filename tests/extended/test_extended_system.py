"""Integration tests: the complete ATM system (paper §7.1 future work)."""

import numpy as np
import pytest

from repro.backends.registry import all_platform_names, resolve_backend
from repro.core.setup import setup_flight
from repro.extended import (
    AdvisoryChannel,
    Runway,
    TerrainGrid,
    run_extended_schedule,
)
from repro.extended.costs import advisory_timing, approach_timing, terrain_timing
from repro.extended.scheduler import (
    APPROACH_PERIODS,
    DISPLAY_PERIODS,
    TERRAIN_PERIOD,
)


@pytest.fixture(scope="module")
def grid():
    return TerrainGrid.generate(2018)


class TestSchedule:
    def test_task_table_layout(self, grid):
        fleet = setup_flight(96, 2018)
        res = run_extended_schedule(
            resolve_backend("cuda:titan-x-pascal"), fleet, terrain=grid
        )
        by_period = {p.period: [t.task for t in p.tasks] for p in res.periods}
        assert by_period[0][0] == "task1"
        assert "advisory" in by_period[0]
        for p in APPROACH_PERIODS:
            assert "approach" in by_period[p]
        for p in DISPLAY_PERIODS:
            assert "display" in by_period[p]
        assert "terrain" in by_period[TERRAIN_PERIOD]
        assert "task23" in by_period[15]
        # Ordinary periods run Task 1 only.
        assert by_period[2] == ["task1"]

    def test_full_system_still_viable_on_nvidia(self, grid):
        """The paper's §7.1 question, answered: yes — the complete task
        set still never misses on the GPU models."""
        for device in ("cuda:geforce-9800-gt", "cuda:gtx-880m", "cuda:titan-x-pascal"):
            fleet = setup_flight(960, 2018)
            res = run_extended_schedule(
                resolve_backend(device), fleet, terrain=grid, major_cycles=2
            )
            assert res.missed_deadlines == 0, device
            assert res.skipped_tasks == 0, device

    def test_extended_tasks_are_cheap_next_to_collisions(self, grid):
        fleet = setup_flight(960, 2018)
        res = run_extended_schedule(
            resolve_backend("cuda:titan-x-pascal"), fleet, terrain=grid
        )
        assert res.task_times("terrain").max() < res.task_times("task23").max()

    def test_functional_equivalence_across_platforms(self, grid):
        """The full system keeps the bit-identical-results property."""
        states = []
        for name in ("reference", "cuda:gtx-880m", "simd:clearspeed-csx600"):
            fleet = setup_flight(128, 2018)
            run_extended_schedule(
                resolve_backend(name),
                fleet,
                terrain=grid,
                runway=Runway(),
                channel=AdvisoryChannel(),
                major_cycles=2,
            )
            states.append(fleet)
        assert states[0].state_equal(states[1])
        assert states[0].state_equal(states[2])

    def test_summary_contains_all_tasks(self, grid):
        fleet = setup_flight(96, 2018)
        res = run_extended_schedule(resolve_backend(None), fleet, terrain=grid)
        s = res.summary()
        for task in ("task1", "task23", "terrain", "approach", "advisory"):
            assert f"{task}_mean_s" in s

    def test_rejects_zero_cycles(self, grid):
        with pytest.raises(ValueError):
            run_extended_schedule(
                resolve_backend(None), setup_flight(8, 1), terrain=grid,
                major_cycles=0,
            )


class TestCostAdapters:
    """Every platform type gets a positive, sane modelled time."""

    @pytest.mark.parametrize("name", all_platform_names() + ["reference"])
    def test_terrain_timing_positive(self, name, grid):
        from repro.extended.terrain_avoidance import check_terrain

        backend = resolve_backend(name)
        fleet = setup_flight(192, 2018)
        stats = check_terrain(fleet, grid)
        t = terrain_timing(backend, fleet.n, stats)
        assert t.seconds > 0
        assert t.task == "terrain"
        assert t.platform == backend.name

    @pytest.mark.parametrize("name", all_platform_names() + ["reference"])
    def test_approach_timing_positive(self, name):
        from repro.extended.approach import sequence_approach

        backend = resolve_backend(name)
        fleet = setup_flight(192, 2018)
        stats = sequence_approach(fleet, Runway())
        t = approach_timing(backend, fleet.n, stats)
        assert t.seconds > 0

    @pytest.mark.parametrize("name", all_platform_names() + ["reference"])
    def test_advisory_timing_positive(self, name):
        from repro.extended.advisory import AdvisoryStats

        backend = resolve_backend(name)
        t = advisory_timing(backend, 192, AdvisoryStats(uttered=3, backlog=2))
        assert t.seconds > 0

    def test_terrain_scales_with_fleet(self, grid):
        from repro.extended.terrain_avoidance import check_terrain

        backend = resolve_backend("ap:staran")
        times = []
        for n in (96, 960):
            fleet = setup_flight(n, 2018)
            stats = check_terrain(fleet, grid)
            times.append(terrain_timing(backend, n, stats).seconds)
        # AP terrain check is constant-time parallel except the advisory
        # tail — it must grow far slower than the fleet.
        assert times[1] < 10 * times[0]

    def test_deterministic_platforms_repeat(self, grid):
        from repro.extended.terrain_avoidance import check_terrain

        backend = resolve_backend("cuda:gtx-880m")
        fleet = setup_flight(192, 2018)
        stats = check_terrain(fleet.copy(), grid)
        a = terrain_timing(backend, fleet.n, stats).seconds
        b = terrain_timing(backend, fleet.n, stats).seconds
        assert a == b
