"""Unit tests for display processing (scope projection + label placement)."""

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.setup import setup_flight
from repro.core.types import FleetState
from repro.extended.display import DisplayStats, ScopeConfig, build_display


def fleet_at(points):
    f = FleetState.empty(len(points))
    for i, (x, y) in enumerate(points):
        f.x[i] = x
        f.y[i] = y
    f.alt[:] = 10_000.0
    return f


class TestScopeConfig:
    def test_projection_corners(self):
        scope = ScopeConfig(cells=64)
        cx, cy = scope.project(-C.GRID_HALF_NM, -C.GRID_HALF_NM)
        assert (cx, cy) == (0, 0)
        cx, cy = scope.project(C.GRID_HALF_NM, C.GRID_HALF_NM)
        assert (cx, cy) == (63, 63)  # clamped to the raster

    def test_projection_centre(self):
        scope = ScopeConfig(cells=64)
        cx, cy = scope.project(0.0, 0.0)
        assert (cx, cy) == (32, 32)

    def test_cell_size(self):
        scope = ScopeConfig(cells=64)  # 4 nm per cell
        a = scope.project(0.0, 0.0)
        b = scope.project(3.9, 0.0)
        assert a == b  # same 4 nm cell

    def test_validation(self):
        with pytest.raises(ValueError):
            ScopeConfig(cells=4)


class TestBuildDisplay:
    def test_sparse_fleet_all_first_choice(self):
        # Aircraft 20 nm apart: no cell sharing, every label fits east.
        fleet = fleet_at([(-60.0, 0.0), (-20.0, 0.0), (20.0, 0.0), (60.0, 0.0)])
        stats = build_display(fleet)
        assert stats.first_choice_labels == 4
        assert stats.moved_labels == 0
        assert stats.overlapping_labels == 0
        assert stats.crowded_targets == 0
        assert stats.occupied_cells == 4

    def test_labels_one_per_aircraft(self):
        fleet = setup_flight(200, 2018)
        stats = build_display(fleet)
        assert len(stats.label_cells) == 200
        assert (
            stats.first_choice_labels
            + stats.moved_labels
            + stats.overlapping_labels
            == 200
        )

    def test_close_pair_second_label_moves(self):
        # Two aircraft in adjacent cells along x: the west one's east
        # label cell is the east target's cell -> it must move.
        scope = ScopeConfig(cells=64)  # 4 nm cells
        fleet = fleet_at([(0.0, 0.0), (4.5, 0.0)])
        stats = build_display(fleet, scope)
        assert stats.moved_labels >= 1
        assert stats.overlapping_labels == 0

    def test_crowded_cell_detected(self):
        fleet = fleet_at([(0.0, 0.0), (0.5, 0.5), (1.0, 1.0)])  # same 4nm cell
        stats = build_display(fleet)
        assert stats.occupied_cells == 1
        assert stats.crowded_targets == 3

    def test_dense_cluster_overlaps(self):
        # Nine aircraft in one cell: targets + four offsets can't host
        # nine labels without overlap.
        pts = [(0.1 * i, 0.1 * j) for i in range(3) for j in range(3)]
        stats = build_display(fleet_at(pts))
        assert stats.overlapping_labels > 0

    def test_deterministic(self):
        fleet = setup_flight(100, 2018)
        a = build_display(fleet)
        b = build_display(fleet)
        assert a.label_cells == b.label_cells

    def test_does_not_mutate_fleet(self):
        fleet = setup_flight(64, 2018)
        before = fleet.copy()
        build_display(fleet)
        assert fleet.state_equal(before)

    def test_labels_stay_on_scope(self):
        scope = ScopeConfig(cells=32)
        fleet = fleet_at([(C.GRID_HALF_NM, C.GRID_HALF_NM)])  # corner
        stats = build_display(fleet, scope)
        (cx, cy) = stats.label_cells[0]
        assert 0 <= cx < 32 and 0 <= cy < 32


class TestDisplayTiming:
    @pytest.mark.parametrize(
        "name",
        [
            "reference",
            "cuda:gtx-880m",
            "ap:staran",
            "simd:clearspeed-csx600",
            "mimd:xeon-16",
            "vector:xeon-phi-7250",
        ],
    )
    def test_positive_on_every_platform(self, name):
        from repro.backends.registry import resolve_backend
        from repro.extended.costs import display_timing

        fleet = setup_flight(192, 2018)
        stats = build_display(fleet)
        t = display_timing(resolve_backend(name), fleet.n, stats)
        assert t.seconds > 0
        assert t.task == "display"

    def test_overlap_pressure_costs_more(self):
        from repro.backends.registry import resolve_backend
        from repro.extended.costs import display_timing

        backend = resolve_backend("ap:staran")
        easy = DisplayStats(aircraft=100, first_choice_labels=100)
        hard = DisplayStats(aircraft=100, overlapping_labels=100)
        assert (
            display_timing(backend, 100, hard).seconds
            > display_timing(backend, 100, easy).seconds
        )
