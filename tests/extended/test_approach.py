"""Unit tests for final-approach sequencing."""

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.types import FleetState
from repro.extended.approach import (
    IN_TRAIL_SEPARATION_NM,
    MIN_APPROACH_SPEED,
    Runway,
    sequence_approach,
)

RUNWAY = Runway(x=-40.0, y=-20.0, course_deg=0.0, length_nm=40.0)


def approach_fleet(distances_nm, alt=4000.0, speed_knots=140.0):
    """Aircraft on final, ``distances_nm`` out from the threshold,
    flying the approach course (east, toward +x)."""
    n = len(distances_nm)
    f = FleetState.empty(n)
    f.x[:] = RUNWAY.x - np.asarray(distances_nm, dtype=float)
    f.y[:] = RUNWAY.y
    f.dx[:] = speed_knots / C.PERIODS_PER_HOUR
    f.dy[:] = 0.0
    f.alt[:] = alt
    f.batdx[:] = f.dx
    f.batdy[:] = f.dy
    return f


class TestCorridorGeometry:
    def test_along_distance(self):
        along, across = RUNWAY.corridor_coordinates(RUNWAY.x - 10.0, RUNWAY.y)
        assert along == pytest.approx(10.0)
        assert across == pytest.approx(0.0)

    def test_across_sign(self):
        _, across = RUNWAY.corridor_coordinates(RUNWAY.x - 10.0, RUNWAY.y + 2.0)
        assert across == pytest.approx(2.0)

    def test_on_approach_filters(self):
        fleet = approach_fleet([10.0, 20.0])
        fleet.alt[1] = 20_000.0  # too high
        mask = RUNWAY.on_approach(fleet)
        assert mask.tolist() == [True, False]

    def test_outbound_excluded(self):
        fleet = approach_fleet([10.0])
        fleet.dx[0] = -fleet.dx[0]  # flying away from the runway
        assert not RUNWAY.on_approach(fleet)[0]

    def test_beyond_corridor_excluded(self):
        fleet = approach_fleet([50.0])  # corridor is 40 nm long
        assert not RUNWAY.on_approach(fleet)[0]

    def test_lateral_excluded(self):
        fleet = approach_fleet([10.0])
        fleet.y[0] += 10.0  # 10 nm off the centreline
        assert not RUNWAY.on_approach(fleet)[0]

    def test_rotated_runway(self):
        rw = Runway(x=0.0, y=0.0, course_deg=90.0, length_nm=30.0)
        along, across = rw.corridor_coordinates(0.0, -10.0)
        assert along == pytest.approx(10.0)
        assert abs(across) < 1e-9


class TestSequencing:
    def test_well_spaced_stream_untouched(self):
        fleet = approach_fleet([5.0, 10.0, 15.0, 20.0])
        before = fleet.dx.copy()
        stats = sequence_approach(fleet, RUNWAY)
        assert stats.on_approach == 4
        assert stats.violations == 0
        assert np.array_equal(fleet.dx, before)

    def test_sequence_ordered_by_distance(self):
        fleet = approach_fleet([15.0, 5.0, 25.0])
        stats = sequence_approach(fleet, RUNWAY)
        assert stats.sequence == [1, 0, 2]

    def test_close_follower_slowed(self):
        fleet = approach_fleet([5.0, 6.0])  # 1 nm in trail: violation
        v_before = float(np.hypot(fleet.dx[1], fleet.dy[1]))
        stats = sequence_approach(fleet, RUNWAY)
        assert stats.violations == 1
        assert stats.advisories == 1
        v_after = float(np.hypot(fleet.dx[1], fleet.dy[1]))
        assert v_after < v_before
        # Leader untouched.
        assert fleet.dx[0] == pytest.approx(140.0 / C.PERIODS_PER_HOUR)

    def test_heading_preserved_by_advisory(self):
        rw = Runway(x=0.0, y=0.0, course_deg=45.0, length_nm=40.0)
        n = 2
        fleet = FleetState.empty(n)
        d = np.array([5.0, 6.5])
        theta = np.deg2rad(45.0)
        fleet.x[:] = -d * np.cos(theta)
        fleet.y[:] = -d * np.sin(theta)
        speed = 140.0 / C.PERIODS_PER_HOUR
        fleet.dx[:] = speed * np.cos(theta)
        fleet.dy[:] = speed * np.sin(theta)
        fleet.alt[:] = 3000.0
        heading_before = np.arctan2(fleet.dy[1], fleet.dx[1])
        stats = sequence_approach(fleet, rw)
        assert stats.advisories == 1
        heading_after = np.arctan2(fleet.dy[1], fleet.dx[1])
        assert heading_after == pytest.approx(heading_before)

    def test_speed_floor_respected(self):
        fleet = approach_fleet([5.0, 6.0], speed_knots=80.0)  # at the floor
        stats = sequence_approach(fleet, RUNWAY)
        assert stats.violations == 1
        assert stats.advisories == 0  # cannot slow below the floor
        assert np.hypot(fleet.dx[1], fleet.dy[1]) >= MIN_APPROACH_SPEED - 1e-12

    def test_empty_corridor(self):
        fleet = approach_fleet([10.0])
        fleet.alt[0] = 30_000.0
        stats = sequence_approach(fleet, RUNWAY)
        assert stats.on_approach == 0
        assert stats.sequence == []

    def test_single_aircraft_no_pairs(self):
        fleet = approach_fleet([10.0])
        stats = sequence_approach(fleet, RUNWAY)
        assert stats.on_approach == 1
        assert stats.violations == 0

    def test_separation_threshold_exact(self):
        fleet = approach_fleet([5.0, 5.0 + IN_TRAIL_SEPARATION_NM])
        stats = sequence_approach(fleet, RUNWAY)
        assert stats.violations == 0
