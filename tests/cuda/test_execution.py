"""Unit tests for the warp cost ledger."""

import numpy as np
import pytest

from repro.cuda.device import GEFORCE_9800_GT, TITAN_X_PASCAL
from repro.cuda.execution import WarpLedger
from repro.cuda.grid import LaunchConfig


def ledger(n=96, device=TITAN_X_PASCAL, block=96):
    return WarpLedger(device, LaunchConfig(n, block))


class TestMaskPlumbing:
    def test_full_mask_covers_useful_threads(self):
        led = ledger(100)
        mask = led.full_mask()
        assert mask.sum() == 100
        assert mask.shape == (128,)  # padded to whole warps

    def test_lanes_to_warps_none_is_all(self):
        led = ledger(96)
        assert led.lanes_to_warps(None).tolist() == [True, True, True]

    def test_lanes_to_warps_partial(self):
        led = ledger(96)
        lane = np.zeros(96, dtype=bool)
        lane[40] = True  # warp 1
        assert led.lanes_to_warps(lane).tolist() == [False, True, False]

    def test_lanes_to_warps_accepts_padded(self):
        led = ledger(100)
        lane = np.zeros(128, dtype=bool)
        lane[127] = True
        assert led.lanes_to_warps(lane).tolist() == [False, False, False, True]

    def test_lanes_to_warps_rejects_bad_length(self):
        with pytest.raises(ValueError):
            ledger(96).lanes_to_warps(np.zeros(50, dtype=bool))

    def test_warp_values_max_and_sum(self):
        led = ledger(64)
        vals = np.zeros(64)
        vals[0] = 3.0
        vals[1] = 5.0
        vals[40] = 7.0
        assert led.warp_values(vals, "max").tolist() == [5.0, 7.0]
        assert led.warp_values(vals, "sum").tolist() == [8.0, 7.0]

    def test_warp_values_bad_reduce(self):
        with pytest.raises(ValueError):
            ledger(64).warp_values(np.zeros(64), "median")


class TestCharging:
    def test_divergence_charges_whole_warp(self):
        """One active lane costs the same as 32: SIMT serialization."""
        led_one = ledger(96)
        lane = np.zeros(96, dtype=bool)
        lane[0] = True
        led_one.charge_issue(10, lane)

        led_all = ledger(96)
        full = np.zeros(96, dtype=bool)
        full[:32] = True
        led_all.charge_issue(10, full)

        assert led_one.issue[0] == led_all.issue[0] == 10.0

    def test_inactive_warps_not_charged(self):
        led = ledger(96)
        lane = np.zeros(96, dtype=bool)
        lane[:32] = True
        led.charge_issue(5, lane)
        assert led.issue.tolist() == [5.0, 0.0, 0.0]

    def test_special_multiplier(self):
        led = ledger(32, device=GEFORCE_9800_GT)
        led.charge_issue(1, special=True)
        assert led.issue[0] == GEFORCE_9800_GT.special_op_factor

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ledger().charge_issue(-1)

    def test_per_warp_vector(self):
        led = ledger(96)
        led.charge_issue_per_warp(np.array([1.0, 2.0, 3.0]))
        assert led.issue.tolist() == [1.0, 2.0, 3.0]
        with pytest.raises(ValueError):
            led.charge_issue_per_warp(np.array([1.0, 2.0]))

    def test_uniform_load_is_issue_only(self):
        led = ledger(96)
        led.charge_uniform_load(4)
        assert led.issue.sum() == 12.0  # 4 per warp x 3 warps
        assert led.transactions.sum() == 0
        assert led.mem_bytes.sum() == 0

    def test_stream_accounting(self):
        led = ledger(96)
        led.charge_stream(1280, passes=2.0)
        t = led.totals()
        assert t.bytes == 2560
        assert t.transactions == 2560 / TITAN_X_PASCAL.mem_segment_bytes
        with pytest.raises(ValueError):
            led.charge_stream(-1)

    def test_contiguous_access_charges_all_warps(self):
        led = ledger(96)
        led.charge_contiguous_access(1)
        # 3 warps x 2 transactions (256B over 128B segments).
        assert led.transactions.sum() == 6

    def test_gather_respects_mask(self):
        led = ledger(96)
        idx = np.zeros(96, dtype=np.int64)
        mask = np.zeros(96, dtype=bool)
        mask[:32] = True
        led.charge_gather(idx, mask)
        assert led.transactions[0] == 1  # broadcast-like
        assert led.transactions[1] == 0

    def test_gather_repeats(self):
        led1 = ledger(96)
        led1.charge_gather(np.arange(96), repeats=3)
        led2 = ledger(96)
        for _ in range(3):
            led2.charge_gather(np.arange(96))
        assert led1.transactions.sum() == led2.transactions.sum()

    def test_totals_combine_warp_and_stream(self):
        led = ledger(96)
        led.charge_contiguous_access(1)
        led.charge_stream(128)
        t = led.totals()
        assert t.transactions == 7  # 6 warp + 1 stream
