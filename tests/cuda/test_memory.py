"""Unit tests for the transfer model and coalescing analysis."""

import numpy as np
import pytest

from repro.cuda.device import GEFORCE_9800_GT, TITAN_X_PASCAL
from repro.cuda.memory import TransferModel, transaction_count


class TestTransferModel:
    def test_zero_bytes_is_free(self):
        assert TransferModel(TITAN_X_PASCAL).copy_seconds(0) == 0.0

    def test_latency_plus_bandwidth(self):
        t = TransferModel(TITAN_X_PASCAL).copy_seconds(12_000_000_000)
        assert t == pytest.approx(TITAN_X_PASCAL.pcie_latency_s + 1.0)

    def test_round_trip_doubles(self):
        m = TransferModel(TITAN_X_PASCAL)
        assert m.round_trip_seconds(1000) == pytest.approx(2 * m.copy_seconds(1000))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TransferModel(TITAN_X_PASCAL).copy_seconds(-1)

    def test_small_transfers_latency_bound(self):
        m = TransferModel(TITAN_X_PASCAL)
        assert m.copy_seconds(16) == pytest.approx(
            TITAN_X_PASCAL.pcie_latency_s, rel=1e-3
        )


def warp_offsets(indices, itemsize=8):
    """(1, 32) byte offsets from element indices."""
    return (np.asarray(indices, dtype=np.int64) * itemsize).reshape(1, 32)


ALL_ACTIVE = np.ones((1, 32), dtype=bool)


class TestModernCoalescing:
    def test_contiguous_float64_is_two_segments(self):
        # 32 lanes x 8 B = 256 B = two 128 B segments.
        tx = transaction_count(
            TITAN_X_PASCAL, warp_offsets(np.arange(32)), ALL_ACTIVE, 8
        )
        assert tx[0] == 2

    def test_same_address_is_one_transaction(self):
        tx = transaction_count(
            TITAN_X_PASCAL, warp_offsets(np.zeros(32)), ALL_ACTIVE, 8
        )
        assert tx[0] == 1

    def test_stride_two_doubles_span(self):
        tx = transaction_count(
            TITAN_X_PASCAL, warp_offsets(np.arange(32) * 2), ALL_ACTIVE, 8
        )
        assert tx[0] == 4

    def test_fully_scattered_is_one_per_lane(self):
        idx = np.arange(32) * 1000  # each lane in its own segment
        tx = transaction_count(TITAN_X_PASCAL, warp_offsets(idx), ALL_ACTIVE, 8)
        assert tx[0] == 32

    def test_inactive_lanes_ignored(self):
        active = ALL_ACTIVE.copy()
        active[0, 16:] = False
        idx = np.arange(32) * 1000
        tx = transaction_count(TITAN_X_PASCAL, warp_offsets(idx), active, 8)
        assert tx[0] == 16

    def test_fully_inactive_warp_is_zero(self):
        tx = transaction_count(
            TITAN_X_PASCAL, warp_offsets(np.arange(32)), np.zeros((1, 32), bool), 8
        )
        assert tx[0] == 0

    def test_order_within_warp_does_not_matter(self):
        idx = np.arange(32)
        rng = np.random.default_rng(0)
        shuffled = rng.permutation(idx)
        a = transaction_count(TITAN_X_PASCAL, warp_offsets(idx), ALL_ACTIVE, 8)
        b = transaction_count(TITAN_X_PASCAL, warp_offsets(shuffled), ALL_ACTIVE, 8)
        assert a[0] == b[0]


class TestStrictCoalescing:
    def test_sequential_aligned_is_one_per_half_warp(self):
        tx = transaction_count(
            GEFORCE_9800_GT, warp_offsets(np.arange(32)), ALL_ACTIVE, 8
        )
        assert tx[0] == 2  # one per half-warp

    def test_permuted_serializes(self):
        """CC 1.1 requires lane k -> word k; a permutation serializes."""
        idx = np.arange(32)
        idx[0], idx[1] = idx[1], idx[0]
        tx = transaction_count(GEFORCE_9800_GT, warp_offsets(idx), ALL_ACTIVE, 8)
        # First half-warp serializes (16), second coalesces... the second
        # half's base is element 16, aligned, sequential -> 1.
        assert tx[0] == 17

    def test_same_address_serializes_on_tesla(self):
        tx = transaction_count(
            GEFORCE_9800_GT, warp_offsets(np.zeros(32)), ALL_ACTIVE, 8
        )
        assert tx[0] == 32  # no broadcast in the CC 1.x load path

    def test_misaligned_base_serializes(self):
        tx = transaction_count(
            GEFORCE_9800_GT, warp_offsets(np.arange(32) + 1), ALL_ACTIVE, 8
        )
        assert tx[0] == 32


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            transaction_count(
                TITAN_X_PASCAL, np.zeros((1, 16), np.int64), ALL_ACTIVE, 8
            )
