"""Unit tests for the CUDA backend."""

import numpy as np
import pytest

from repro.backends.reference import ReferenceBackend
from repro.core.radar import generate_radar_frame
from repro.core.setup import setup_flight
from repro.cuda.backend import CudaBackend


def run_both(n=128, seed=2018, **kwargs):
    ref_fleet = setup_flight(n, seed)
    gpu_fleet = setup_flight(n, seed)
    ref, gpu = ReferenceBackend(), CudaBackend("titan-x-pascal", **kwargs)
    for period in range(2):
        ref.track_and_correlate(ref_fleet, generate_radar_frame(ref_fleet, seed, period))
        gpu.track_and_correlate(gpu_fleet, generate_radar_frame(gpu_fleet, seed, period))
    ref.detect_and_resolve(ref_fleet)
    gpu.detect_and_resolve(gpu_fleet)
    return ref_fleet, gpu_fleet


class TestFunctionalEquivalence:
    def test_bit_identical_to_reference(self):
        ref_fleet, gpu_fleet = run_both()
        assert ref_fleet.state_equal(gpu_fleet)

    def test_all_devices_agree(self):
        fleets = []
        for dev in ("geforce-9800-gt", "gtx-880m", "titan-x-pascal"):
            fleet = setup_flight(96, 2018)
            backend = CudaBackend(dev)
            backend.track_and_correlate(fleet, generate_radar_frame(fleet, 2018, 0))
            backend.detect_and_resolve(fleet)
            fleets.append(fleet)
        assert fleets[0].state_equal(fleets[1])
        assert fleets[1].state_equal(fleets[2])


class TestTimingProperties:
    def test_deterministic_timing(self):
        times = []
        for _ in range(3):
            fleet = setup_flight(96, 2018)
            backend = CudaBackend("gtx-880m")
            frame = generate_radar_frame(fleet, 2018, 0)
            t1 = backend.track_and_correlate(fleet, frame)
            t23 = backend.detect_and_resolve(fleet)
            times.append((t1.seconds, t23.seconds))
        assert times[0] == times[1] == times[2]

    def test_device_performance_ordering(self):
        results = {}
        for dev in ("geforce-9800-gt", "gtx-880m", "titan-x-pascal"):
            fleet = setup_flight(1920, 2018)
            backend = CudaBackend(dev)
            frame = generate_radar_frame(fleet, 2018, 0)
            t1 = backend.track_and_correlate(fleet, frame)
            t23 = backend.detect_and_resolve(fleet)
            results[dev] = (t1.seconds, t23.seconds)
        assert (
            results["titan-x-pascal"][0]
            < results["gtx-880m"][0]
            < results["geforce-9800-gt"][0]
        )
        assert (
            results["titan-x-pascal"][1]
            < results["gtx-880m"][1]
            < results["geforce-9800-gt"][1]
        )

    def test_meets_paper_deadlines_at_moderate_n(self):
        """No NVIDIA card comes near the half-second budget at 1920."""
        from repro.core import constants as C

        for dev in ("geforce-9800-gt", "gtx-880m", "titan-x-pascal"):
            fleet = setup_flight(1920, 2018)
            backend = CudaBackend(dev)
            frame = generate_radar_frame(fleet, 2018, 0)
            t1 = backend.track_and_correlate(fleet, frame)
            t23 = backend.detect_and_resolve(fleet)
            assert t1.seconds + t23.seconds < C.PERIOD_SECONDS / 4


class TestSplitKernelAblation:
    def test_split_is_slower(self):
        fleet_f = setup_flight(960, 2018)
        fleet_s = setup_flight(960, 2018)
        fused = CudaBackend("titan-x-pascal")
        split = CudaBackend("titan-x-pascal", fused_collision_kernel=False)
        t_f = fused.detect_and_resolve(fleet_f)
        t_s = split.detect_and_resolve(fleet_s)
        assert t_s.seconds > t_f.seconds
        assert t_s.breakdown.transfer > 0
        # Functional results identical either way.
        assert fleet_f.state_equal(fleet_s)

    def test_name_reflects_variants(self):
        assert CudaBackend("gtx-880m").name == "cuda:gtx-880m"
        assert "bs128" in CudaBackend("gtx-880m", block_size=128).name
        assert "split" in CudaBackend("gtx-880m", fused_collision_kernel=False).name


class TestExtras:
    def test_setup_timing(self):
        t = CudaBackend("titan-x-pascal").setup_timing(960)
        assert t.task == "setup"
        assert t.seconds > 0

    def test_radar_phase_timing(self):
        phase = CudaBackend("titan-x-pascal").radar_phase_timing(960, 960)
        assert phase.seconds > 0

    def test_describe(self):
        info = CudaBackend("gtx-880m").describe()
        assert info["compute_capability"] == "3.0"
        assert info["cuda_cores"] == 1536

    def test_peak_throughput(self):
        assert CudaBackend("titan-x-pascal").peak_throughput_ops_per_s() > 1e12

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            CudaBackend("quadro-zzz")
