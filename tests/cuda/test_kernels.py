"""Unit tests for the four ATM kernel cost models."""

import numpy as np
import pytest

from repro.core.radar import generate_radar_frame
from repro.core.resolution import detect_and_resolve
from repro.core.setup import setup_flight
from repro.core.tracking import correlate
from repro.cuda.device import GEFORCE_9800_GT, GTX_880M, TITAN_X_PASCAL
from repro.cuda.execution import WarpLedger
from repro.cuda.grid import LaunchConfig
from repro.cuda.kernels.check_collision import (
    altitude_pass_counts,
    charge_check_collision,
)
from repro.cuda.kernels.generate_radar import charge_generate_radar
from repro.cuda.kernels.setup_flight import charge_setup_flight
from repro.cuda.kernels.track_drone import charge_track_drone


def tracked_state(n, seed=2018):
    fleet = setup_flight(n, seed)
    frame = generate_radar_frame(fleet, seed, 0)
    stats = correlate(fleet, frame)
    return fleet, frame, stats


def collision_state(n, seed=2018):
    fleet = setup_flight(n, seed)
    det, res = detect_and_resolve(fleet)
    return fleet, det, res


class TestSetupFlightKernel:
    def test_positive_and_deterministic(self):
        a = charge_setup_flight(TITAN_X_PASCAL, 960)
        b = charge_setup_flight(TITAN_X_PASCAL, 960)
        assert a.seconds == b.seconds > 0

    def test_scales_with_n(self):
        small = charge_setup_flight(GEFORCE_9800_GT, 960)
        big = charge_setup_flight(GEFORCE_9800_GT, 9600)
        assert big.seconds > small.seconds

    def test_far_below_period_budget(self):
        kt = charge_setup_flight(GEFORCE_9800_GT, 4000)
        assert kt.seconds < 0.01


class TestGenerateRadarKernel:
    def test_includes_host_round_trip(self):
        phase = charge_generate_radar(TITAN_X_PASCAL, 960, 960)
        assert phase.transfer_seconds > 0
        assert phase.seconds == pytest.approx(
            phase.kernel.seconds + phase.transfer_seconds
        )

    def test_transfer_grows_with_reports(self):
        a = charge_generate_radar(TITAN_X_PASCAL, 960, 100)
        b = charge_generate_radar(TITAN_X_PASCAL, 960, 10_000)
        assert b.transfer_seconds > a.transfer_seconds


class TestTrackDroneKernel:
    def test_positive_cost(self):
        fleet, frame, stats = tracked_state(192)
        kt = charge_track_drone(GTX_880M, fleet, frame, stats)
        assert kt.seconds > 0
        assert kt.issue_total > 0

    def test_deterministic(self):
        fleet, frame, stats = tracked_state(192)
        a = charge_track_drone(GTX_880M, fleet, frame, stats)
        b = charge_track_drone(GTX_880M, fleet, frame, stats)
        assert a.seconds == b.seconds

    def test_more_rounds_cost_more(self):
        """A frame that forces retry rounds is costlier than one that
        correlates completely in round 1."""
        fleet, frame, stats = tracked_state(192)
        assert stats.rounds_executed == 1
        one_round = charge_track_drone(GTX_880M, fleet, frame, stats)

        # Fabricate stats with two extra rounds over the same fleet.
        import copy

        stats3 = copy.deepcopy(stats)
        stats3.rounds_executed = 3
        for _ in range(2):
            stats3.round_radar_ids.append(np.arange(50))
            stats3.round_active_planes.append(50)
            stats3.round_candidates_per_radar.append(
                np.zeros(frame.n, dtype=np.int64)
            )
            stats3.candidate_pairs.append(0)
            stats3.matched.append(0)
        three_rounds = charge_track_drone(GTX_880M, fleet, frame, stats3)
        assert three_rounds.seconds > one_round.seconds

    def test_scales_with_fleet(self):
        small = charge_track_drone(GTX_880M, *tracked_state(192))
        big = charge_track_drone(GTX_880M, *tracked_state(1920))
        assert big.seconds > small.seconds

    def test_device_ordering(self):
        fleet, frame, stats = tracked_state(1920)
        t_old = charge_track_drone(GEFORCE_9800_GT, fleet, frame, stats)
        t_new = charge_track_drone(TITAN_X_PASCAL, fleet, frame, stats)
        assert t_new.seconds < t_old.seconds


class TestAltitudePassCounts:
    def test_matches_bruteforce(self):
        fleet, det, res = collision_state(100)
        cfg = LaunchConfig(100)
        led = WarpLedger(TITAN_X_PASCAL, cfg)
        counts = altitude_pass_counts(led, fleet.alt)

        # Brute force: warp w passes iteration p if any of its lanes is
        # within 1000 ft of aircraft p.
        from repro.core import constants as C

        n = 100
        expected = np.zeros(led.n_warps, dtype=np.int64)
        for w in range(led.n_warps):
            lanes = range(w * 32, min((w + 1) * 32, n))
            for p in range(n):
                if any(
                    abs(fleet.alt[i] - fleet.alt[p]) < C.ALTITUDE_SEPARATION_FT
                    for i in lanes
                ):
                    expected[w] += 1
        assert np.array_equal(counts, expected)


class TestCheckCollisionKernel:
    def test_positive_cost(self):
        fleet, det, res = collision_state(192)
        kt = charge_check_collision(GTX_880M, fleet, det, res)
        assert kt.seconds > 0

    def test_deterministic(self):
        fleet, det, res = collision_state(192)
        a = charge_check_collision(GTX_880M, fleet, det, res)
        b = charge_check_collision(GTX_880M, fleet, det, res)
        assert a.seconds == b.seconds

    def test_resolution_attempts_cost_extra(self):
        fleet, det, res = collision_state(192)
        base = charge_check_collision(GTX_880M, fleet, det, res)
        import copy

        res2 = copy.deepcopy(res)
        res2.attempts = res.attempts + 3  # every warp re-sweeps more
        res2.trials_evaluated += 3 * fleet.n
        more = charge_check_collision(GTX_880M, fleet, det, res2)
        assert more.seconds > base.seconds

    def test_superlinear_total_work(self):
        """Per-aircraft sweeps over the whole table: doubling the fleet
        more than doubles the modelled time once compute dominates."""
        t1 = charge_check_collision(GEFORCE_9800_GT, *collision_state(960)).seconds
        t2 = charge_check_collision(GEFORCE_9800_GT, *collision_state(1920)).seconds
        assert t2 > 2.0 * t1

    def test_old_card_pays_for_missing_cache(self):
        fleet, det, res = collision_state(1920)
        old = charge_check_collision(GEFORCE_9800_GT, fleet, det, res)
        new = charge_check_collision(TITAN_X_PASCAL, fleet, det, res)
        assert old.bytes_total > new.bytes_total
