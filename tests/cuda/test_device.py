"""Unit tests for the CUDA device tables."""

import pytest

from repro.cuda.device import (
    DEVICES,
    GEFORCE_9800_GT,
    GTX_880M,
    TITAN_X_PASCAL,
    WARP_SIZE,
    get_device,
)


def test_three_paper_cards_present():
    assert set(DEVICES) == {"geforce-9800-gt", "gtx-880m", "titan-x-pascal"}


def test_get_device():
    assert get_device("gtx-880m") is GTX_880M
    with pytest.raises(KeyError, match="unknown CUDA device"):
        get_device("rtx-4090")


def test_compute_capabilities():
    assert GEFORCE_9800_GT.compute_capability < (2, 0)
    assert GTX_880M.compute_capability == (3, 0)
    assert TITAN_X_PASCAL.compute_capability == (6, 1)


def test_core_counts():
    assert GEFORCE_9800_GT.total_cores == 112
    assert GTX_880M.total_cores == 1536
    assert TITAN_X_PASCAL.total_cores == 3584


def test_card_generations_ordered_by_capability():
    assert (
        GEFORCE_9800_GT.total_cores
        < GTX_880M.total_cores
        < TITAN_X_PASCAL.total_cores
    )
    assert (
        GEFORCE_9800_GT.mem_bandwidth_gbs
        < GTX_880M.mem_bandwidth_gbs
        < TITAN_X_PASCAL.mem_bandwidth_gbs
    )


def test_only_tesla_era_card_has_strict_coalescing():
    assert GEFORCE_9800_GT.strict_coalescing
    assert not GTX_880M.strict_coalescing
    assert not TITAN_X_PASCAL.strict_coalescing


def test_l2_absent_on_cc1x():
    assert GEFORCE_9800_GT.l2_bytes == 0
    assert GTX_880M.l2_bytes > 0


def test_max_warps_per_sm():
    assert GTX_880M.max_warps_per_sm == 2048 // WARP_SIZE


def test_peak_gflops_positive():
    for dev in DEVICES.values():
        assert dev.peak_gflops > 0


def test_registry_names():
    assert TITAN_X_PASCAL.registry_name == "cuda:titan-x-pascal"
