"""Unit tests for the shared-memory tiled collision-kernel variant."""

import pytest

from repro.core.resolution import detect_and_resolve
from repro.core.setup import setup_flight
from repro.cuda.device import DEVICES, GEFORCE_9800_GT, TITAN_X_PASCAL
from repro.cuda.grid import LaunchConfig
from repro.cuda.kernels.check_collision import (
    charge_check_collision,
    charge_check_collision_tiled,
)
from repro.cuda.occupancy import compute_occupancy


def state(n=480, seed=2018):
    fleet = setup_flight(n, seed)
    det, res = detect_and_resolve(fleet)
    return fleet, det, res


class TestTiledKernel:
    def test_positive_and_deterministic(self):
        fleet, det, res = state()
        a = charge_check_collision_tiled(GEFORCE_9800_GT, fleet, det, res)
        b = charge_check_collision_tiled(GEFORCE_9800_GT, fleet, det, res)
        assert a.seconds == b.seconds > 0

    @pytest.mark.parametrize("key", sorted(DEVICES))
    def test_never_faster_than_global(self, key):
        fleet, det, res = state()
        g = charge_check_collision(DEVICES[key], fleet, det, res)
        t = charge_check_collision_tiled(DEVICES[key], fleet, det, res)
        assert t.seconds >= g.seconds

    def test_occupancy_squeezed_on_cc1x(self):
        fleet, det, res = state()
        t = charge_check_collision_tiled(GEFORCE_9800_GT, fleet, det, res)
        g = charge_check_collision(GEFORCE_9800_GT, fleet, det, res)
        assert t.occupancy.blocks_per_sm < g.occupancy.blocks_per_sm

    def test_dram_traffic_scales_with_blocks(self):
        small_fleet, sd, sr = state(480)
        big_fleet, bd, br = state(1920)
        small = charge_check_collision_tiled(TITAN_X_PASCAL, small_fleet, sd, sr)
        big = charge_check_collision_tiled(TITAN_X_PASCAL, big_fleet, bd, br)
        # Per-block streaming: bytes grow ~quadratically (blocks x table).
        assert big.bytes_total > 10 * small.bytes_total


class TestSmemOccupancy:
    def test_smem_limits_blocks(self):
        occ = compute_occupancy(
            GEFORCE_9800_GT, LaunchConfig(96 * 50), smem_per_block=4 * 1024
        )
        assert occ.blocks_per_sm == 4  # 16 KiB / 4 KiB

    def test_oversized_block_rejected(self):
        with pytest.raises(ValueError, match="shared memory"):
            compute_occupancy(
                GEFORCE_9800_GT, LaunchConfig(96), smem_per_block=32 * 1024
            )

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            compute_occupancy(
                GEFORCE_9800_GT, LaunchConfig(96), smem_per_block=-1
            )

    def test_zero_smem_unchanged(self):
        a = compute_occupancy(TITAN_X_PASCAL, LaunchConfig(960))
        b = compute_occupancy(TITAN_X_PASCAL, LaunchConfig(960), smem_per_block=0)
        assert a == b
