"""Unit tests for the occupancy calculator."""

import pytest

from repro.cuda.device import GEFORCE_9800_GT, GTX_880M, TITAN_X_PASCAL
from repro.cuda.grid import LaunchConfig
from repro.cuda.occupancy import compute_occupancy


class TestOccupancy:
    def test_threads_per_sm_limit(self):
        # 9800 GT: 768 threads/SM at 96/block -> 8 blocks/SM (also the
        # block limit).
        occ = compute_occupancy(GEFORCE_9800_GT, LaunchConfig(96 * 200))
        assert occ.blocks_per_sm == 8
        assert occ.warps_per_sm == 24

    def test_block_limit_binds_on_kepler(self):
        # 880M: 2048/96 = 21 by threads, 16 by blocks -> 16.
        occ = compute_occupancy(GTX_880M, LaunchConfig(96 * 200))
        assert occ.blocks_per_sm == 16

    def test_register_limit(self):
        occ = compute_occupancy(
            TITAN_X_PASCAL, LaunchConfig(96 * 200), regs_per_thread=256
        )
        # 65536 / (256 * 96) = 2 blocks per SM.
        assert occ.blocks_per_sm == 2

    def test_register_validation(self):
        with pytest.raises(ValueError):
            compute_occupancy(GTX_880M, LaunchConfig(96), regs_per_thread=0)

    def test_single_wave_when_device_big_enough(self):
        occ = compute_occupancy(TITAN_X_PASCAL, LaunchConfig(96))
        assert occ.waves == 1
        assert occ.concurrent_blocks >= 1

    def test_waves_grow_with_blocks(self):
        small = compute_occupancy(GEFORCE_9800_GT, LaunchConfig(96 * 112))
        big = compute_occupancy(GEFORCE_9800_GT, LaunchConfig(96 * 1121))
        assert big.waves > small.waves

    def test_wave_arithmetic(self):
        occ = compute_occupancy(GEFORCE_9800_GT, LaunchConfig(96 * 112))
        # 112 blocks over 14 SMs x 8 blocks/SM = exactly one wave.
        assert occ.concurrent_blocks == 112
        assert occ.waves == 1
        occ2 = compute_occupancy(GEFORCE_9800_GT, LaunchConfig(96 * 113))
        assert occ2.waves == 2

    def test_occupancy_fraction_bounded(self):
        for dev in (GEFORCE_9800_GT, GTX_880M, TITAN_X_PASCAL):
            occ = compute_occupancy(dev, LaunchConfig(960))
            assert 0 < occ.occupancy_fraction <= 1.0
