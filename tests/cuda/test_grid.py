"""Unit tests for launch configuration."""

import pytest

from repro.cuda.device import GTX_880M
from repro.cuda.grid import PAPER_BLOCK_SIZE, LaunchConfig


def test_paper_block_size_is_96():
    assert PAPER_BLOCK_SIZE == 96
    assert PAPER_BLOCK_SIZE % 32 == 0  # three warps


class TestLaunchConfig:
    def test_exact_one_block(self):
        cfg = LaunchConfig(96)
        assert cfg.n_blocks == 1
        assert cfg.warps_per_block == 3
        assert cfg.n_warps == 3

    def test_blocks_grow_with_n(self):
        # The paper's rule: 96 threads/block, more blocks for more aircraft.
        assert LaunchConfig(97).n_blocks == 2
        assert LaunchConfig(960).n_blocks == 10
        assert LaunchConfig(961).n_blocks == 11

    def test_partial_last_warp(self):
        cfg = LaunchConfig(100)
        assert cfg.n_warps == 4  # 3 full warps + 4 threads
        assert cfg.padded_threads == 128

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            LaunchConfig(0)
        with pytest.raises(ValueError):
            LaunchConfig(10, block_size=48)  # not a warp multiple
        with pytest.raises(ValueError):
            LaunchConfig(10, block_size=0)

    def test_for_problem_checks_device_limit(self):
        with pytest.raises(ValueError, match="exceeds device limit"):
            LaunchConfig.for_problem(10, GTX_880M, block_size=2048)

    def test_for_problem_ok(self):
        cfg = LaunchConfig.for_problem(500, GTX_880M)
        assert cfg.block_size == 96
