"""Unit tests for the kernel timing assembly."""

import numpy as np
import pytest

from repro.cuda.device import GEFORCE_9800_GT, GTX_880M, TITAN_X_PASCAL
from repro.cuda.execution import WarpLedger
from repro.cuda.grid import LaunchConfig
from repro.cuda.timing import kernel_timing


def timed(n, device, issue_per_warp=100.0, stream_bytes=0.0):
    cfg = LaunchConfig(n)
    led = WarpLedger(device, cfg)
    led.charge_issue(issue_per_warp)
    if stream_bytes:
        led.charge_stream(stream_bytes)
    return kernel_timing("k", device, cfg, led)


class TestKernelTiming:
    def test_launch_overhead_always_paid(self):
        kt = timed(96, TITAN_X_PASCAL, issue_per_warp=0.0)
        assert kt.seconds >= TITAN_X_PASCAL.kernel_launch_s

    def test_deterministic(self):
        a = timed(960, GTX_880M)
        b = timed(960, GTX_880M)
        assert a.seconds == b.seconds

    def test_faster_device_is_faster(self):
        # Same cost profile, three devices: newer cards finish sooner.
        t_old = timed(9600, GEFORCE_9800_GT, issue_per_warp=5000.0)
        t_mid = timed(9600, GTX_880M, issue_per_warp=5000.0)
        t_new = timed(9600, TITAN_X_PASCAL, issue_per_warp=5000.0)
        assert t_new.seconds < t_mid.seconds < t_old.seconds

    def test_compute_scales_with_issue(self):
        small = timed(96 * 200, GEFORCE_9800_GT, issue_per_warp=1000.0)
        big = timed(96 * 200, GEFORCE_9800_GT, issue_per_warp=2000.0)
        assert big.compute_seconds == pytest.approx(2 * small.compute_seconds)

    def test_bandwidth_bound_kernel(self):
        kt = timed(96, TITAN_X_PASCAL, issue_per_warp=1.0, stream_bytes=4.8e9)
        assert kt.bound == "bandwidth"
        assert kt.bandwidth_seconds == pytest.approx(0.01)  # 4.8GB / 480GB/s

    def test_breakdown_sums_to_total(self):
        for kt in (
            timed(960, GTX_880M),
            timed(96, TITAN_X_PASCAL, issue_per_warp=1.0, stream_bytes=4.8e9),
        ):
            b = kt.breakdown()
            assert b.total == pytest.approx(kt.seconds)

    def test_wave_staircase(self):
        """Crossing a wave boundary produces a jump in compute time."""
        dev = GEFORCE_9800_GT  # 112 concurrent blocks at 96/block
        per_block_issue = 1000.0

        def compute_at(blocks):
            cfg = LaunchConfig(blocks * 96)
            led = WarpLedger(dev, cfg)
            led.charge_issue(per_block_issue)  # same per-warp cost
            return kernel_timing("k", dev, cfg, led).compute_seconds

        one_wave = compute_at(112)
        two_waves = compute_at(113)
        assert two_waves > one_wave

    def test_occupancy_embedded(self):
        kt = timed(96 * 500, GTX_880M)
        assert kt.occupancy.waves >= 1
        assert kt.occupancy.blocks_per_sm == 16

    def test_latency_term_positive_with_transactions(self):
        cfg = LaunchConfig(96)
        led = WarpLedger(GEFORCE_9800_GT, cfg)
        led.charge_contiguous_access(4)
        kt = kernel_timing("k", GEFORCE_9800_GT, cfg, led)
        assert kt.latency_seconds > 0
