"""The durable request journal: torn lines, replay, injection
(docs/service.md, "Crash safety & drain")."""

from __future__ import annotations

import json

import pytest

from repro.core.collision import DetectionMode
from repro.harness.faults import (
    FaultPlan,
    decode_journal_line,
    encode_journal_line,
)
from repro.harness.parallel import measure_cells
from repro.service import CellRequest, RequestJournal


@pytest.fixture(scope="module")
def measurement():
    """One real measurement to journal (ap:staran is the cheapest)."""
    _names, rows = measure_cells(
        ["ap:staran"], (32,), seed=2018, periods=1, mode=DetectionMode.SIGNED
    )
    return rows[0][0]


CELL = CellRequest(platform="ap:staran", n=32, seed=2018, periods=1)


class TestLineHelpers:
    def test_round_trip_and_digest(self):
        line = encode_journal_line({"event": "admitted", "key": "k", "cell": {}})
        record = decode_journal_line(line)
        assert record["event"] == "admitted" and record["key"] == "k"

    def test_torn_and_tampered_lines_are_none(self):
        line = encode_journal_line({"event": "served", "key": "k"})
        assert decode_journal_line(line[:-2]) is None
        tampered = line.replace('"served"', '"admitted"')
        assert decode_journal_line(tampered) is None
        assert decode_journal_line("not json at all") is None
        assert decode_journal_line("[1, 2, 3]") is None

    def test_payload_field_scopes_the_digest(self):
        line = encode_journal_line(
            {"key": "k", "measurement": {"a": 1}}, payload_field="measurement"
        )
        assert decode_journal_line(line, payload_field="measurement")
        tampered = line.replace('"a": 1', '"a": 2')
        assert decode_journal_line(tampered, payload_field="measurement") is None


class TestRequestJournal:
    def test_admit_then_serve_round_trip(self, tmp_path, measurement):
        path = tmp_path / "j.jsonl"
        journal = RequestJournal(path)
        journal.record_admitted("key-1", CELL.to_dict())
        assert journal.pending() == {"key-1": CELL.to_dict()}
        journal.record_served("key-1", measurement)
        assert journal.pending() == {}

        loaded = RequestJournal(path, resume=True)
        assert loaded.pending() == {}
        assert loaded.lookup("key-1").to_dict() == measurement.to_dict()
        assert loaded.stats()["dropped_lines"] == 0

    def test_unserved_admissions_are_pending_on_resume(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = RequestJournal(path)
        journal.record_admitted("key-1", CELL.to_dict())
        journal.record_admitted("key-2", {**CELL.to_dict(), "n": 64})

        loaded = RequestJournal(path, resume=True)
        assert set(loaded.pending()) == {"key-1", "key-2"}
        assert loaded.lookup("key-1") is None

    def test_fresh_run_discards_previous_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        RequestJournal(path).record_admitted("key-1", CELL.to_dict())
        fresh = RequestJournal(path, resume=False)
        assert fresh.pending() == {}
        assert RequestJournal(path, resume=True).pending() == {}

    def test_torn_tail_is_dropped_and_counted(self, tmp_path, measurement):
        path = tmp_path / "j.jsonl"
        journal = RequestJournal(path)
        journal.record_admitted("key-1", CELL.to_dict())
        journal.record_served("key-1", measurement)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"event": "admitted", "key": "key-2", "cel')  # SIGKILL

        loaded = RequestJournal(path, resume=True)
        assert loaded.dropped_lines == 1
        assert loaded.lookup("key-1") is not None
        assert "key-2" not in loaded.pending()

    def test_tampered_measurement_is_dropped(self, tmp_path, measurement):
        path = tmp_path / "j.jsonl"
        RequestJournal(path).record_served("key-1", measurement)
        text = path.read_text(encoding="utf-8")
        path.write_text(text.replace('"n_aircraft"', '"n_aircrafT"'))
        loaded = RequestJournal(path, resume=True)
        assert loaded.dropped_lines == 1
        assert loaded.lookup("key-1") is None

    def test_duplicate_records_append_once(self, tmp_path, measurement):
        path = tmp_path / "j.jsonl"
        journal = RequestJournal(path)
        for _ in range(3):
            journal.record_admitted("key-1", CELL.to_dict())
            journal.record_served("key-1", measurement)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        events = [json.loads(line)["event"] for line in lines]
        assert events == ["admitted", "served"]

    def test_served_key_is_never_re_admitted(self, tmp_path, measurement):
        path = tmp_path / "j.jsonl"
        journal = RequestJournal(path)
        journal.record_served("key-1", measurement)
        journal.record_admitted("key-1", CELL.to_dict())
        assert journal.pending() == {}

    def test_corrupt_journal_injection_is_survivable(self, tmp_path):
        """An injected bit-flip must be detected and dropped, not
        half-read — the torn line's client simply re-requests."""
        path = tmp_path / "j.jsonl"
        plan = FaultPlan(rates={"corrupt-journal": 1.0}, seed=7)
        journal = RequestJournal(path, faults=plan)
        journal.record_admitted("key-1", CELL.to_dict())
        loaded = RequestJournal(path, resume=True)
        assert loaded.dropped_lines + len(loaded.pending()) >= 1
        # the flip is deterministic: a second identical run (same plan,
        # same file name, so the same flipped position) is byte-equal
        other = tmp_path / "twin" / "j.jsonl"
        twin = RequestJournal(
            other, faults=FaultPlan(rates={"corrupt-journal": 1.0}, seed=7)
        )
        twin.record_admitted("key-1", CELL.to_dict())
        assert path.read_bytes() == other.read_bytes()
