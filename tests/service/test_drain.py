"""Graceful drain: zero dropped in-flight requests, 503 + Retry-After
on new work, draining healthz (docs/service.md, "Crash safety & drain")."""

from __future__ import annotations

import asyncio
import json

from repro.service import CellRequest

from .test_server import _http, _post_cell, _run_service


class TestDrainCore:
    def test_drain_rejects_new_cells_but_serves_cached(self):
        async def scenario(service, port):
            warm = CellRequest(platform="ap:staran", n=96, periods=1)
            await service.submit_cell(warm)
            summary = await service.drain(timeout_s=0.5)
            assert summary["drained"] is True
            cached = await _post_cell(
                port, {"platform": "ap:staran", "n": 96, "periods": 1}
            )
            fresh = await _post_cell(
                port, {"platform": "ap:staran", "n": 97, "periods": 1}
            )
            health = None
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                health = await _http(reader, writer, "GET", "/healthz")
            finally:
                writer.close()
                await writer.wait_closed()
            return cached, fresh, health, service.stats()

        cached, fresh, health, stats = _run_service(scenario)
        # a fully-cached request adds zero cells: still served while
        # draining (its coalescers must not be dropped)
        assert cached[0] == 200
        assert cached[1]["x-atm-source"] == "cache"
        # new work is rejected with the draining verdict + Retry-After
        assert fresh[0] == 503
        assert fresh[1].get("retry-after")
        verdict = json.loads(fresh[2].decode("utf-8"))
        assert verdict["outcome"] == "rejected_draining"
        assert verdict["admitted"] is False
        # healthz flips so load balancers stop routing here
        assert health[0] == 503
        assert json.loads(health[2].decode("utf-8"))["status"] == "draining"
        assert health[1].get("retry-after")
        assert stats["draining"] is True
        assert stats["drain_seconds"] >= 0

    def test_inflight_requests_complete_during_drain(self):
        """The acceptance bar: zero dropped in-flight requests.  A cell
        admitted before SIGTERM is answered 200 even though the drain
        begins while it is still queued in its batch window."""

        async def scenario(service, port):
            inflight = asyncio.ensure_future(
                _post_cell(port, {"platform": "ap:staran", "n": 96, "periods": 1})
            )
            for _ in range(200):
                if service._pending_cells:
                    break
                await asyncio.sleep(0.005)
            assert service._pending_cells == 1
            drain = asyncio.ensure_future(service.drain(timeout_s=10.0))
            rejected = await _post_cell(
                port, {"platform": "ap:staran", "n": 97, "periods": 1}
            )
            response = await inflight
            summary = await drain
            return response, rejected, summary

        response, rejected, summary = _run_service(
            scenario, batch_window_s=0.3
        )
        assert response[0] == 200, response[2]
        assert rejected[0] == 503
        assert summary["drained"] is True
        assert summary["pending_cells"] == 0
        assert summary["inflight_requests"] == 0

    def test_drain_timeout_leaves_remainder_journaled(self, tmp_path):
        """A drain that cannot flush in time reports the remainder —
        which is already durable in the request journal."""

        async def scenario(service, port):
            inflight = asyncio.ensure_future(
                _post_cell(port, {"platform": "ap:staran", "n": 96, "periods": 1})
            )
            for _ in range(200):
                if service._pending_cells:
                    break
                await asyncio.sleep(0.005)
            summary = await service.drain(timeout_s=0.0)
            response = await inflight
            return summary, response

        summary, response = _run_service(
            scenario, batch_window_s=0.5, cache_dir=str(tmp_path)
        )
        assert summary["drained"] is False
        assert summary["journaled_pending"] == summary["pending_cells"] == 1
        # the cell still finishes (drain never cancels work)
        assert response[0] == 200

    def test_drain_seconds_metric_is_set(self):
        async def scenario(service, port):
            await service.drain(timeout_s=0.1)
            return service.registry.value("atm_service_drain_seconds")

        value = _run_service(scenario)
        assert value is not None and value >= 0.0


class TestJournalReplayInProcess:
    def test_pending_cells_replay_and_stay_byte_identical(self, tmp_path):
        """An admitted-but-unserved journal entry is re-enqueued at
        --resume startup and ends byte-identical to a clean run."""
        cell = {"platform": "ap:staran", "n": 96, "periods": 1}

        async def clean(service, port):
            status, _headers, payload = await _post_cell(port, cell)
            assert status == 200
            return payload

        clean_payload = _run_service(clean)

        # Forge the crash: a journal holding only the admission.
        from repro.service import RequestJournal

        journal_path = tmp_path / "service-journal.jsonl"
        forged = RequestJournal(journal_path)
        key = CellRequest(**{**cell, "seed": 2018, "mode": "signed"}).cache_key()
        forged.record_admitted(
            key, {**cell, "seed": 2018, "mode": "signed"}
        )

        async def resumed(service, port):
            assert service.stats()["replayed_cells"] == 1
            for _ in range(400):
                if service.journal.pending() == {}:
                    break
                await asyncio.sleep(0.01)
            assert service.journal.pending() == {}
            status, headers, payload = await _post_cell(port, cell)
            assert status == 200
            return headers["x-atm-source"], payload, service.registry

        source, payload, registry = _run_service(
            resumed, journal_path=str(journal_path), resume=True
        )
        # replayed before the client ever re-asked: served warm
        assert source == "cache"
        assert payload == clean_payload
        assert registry.value("atm_service_journal_replayed", kind="replayed") == 1

    def test_served_entries_restore_into_memory(self, tmp_path):
        cell = {"platform": "ap:staran", "n": 96, "periods": 1}

        async def first(service, port):
            status, _h, payload = await _post_cell(port, cell)
            assert status == 200
            return payload

        journal_path = tmp_path / "service-journal.jsonl"
        first_payload = _run_service(first, journal_path=str(journal_path))

        async def second(service, port):
            assert service.stats()["restored_cells"] == 1
            status, headers, payload = await _post_cell(port, cell)
            return status, headers["x-atm-source"], payload

        status, source, payload = _run_service(
            second, journal_path=str(journal_path), resume=True
        )
        assert (status, source) == (200, "cache")
        assert payload == first_payload

    def test_dispatch_pool_shutdown_is_bounded(self):
        """stop() must not wedge the loop joining the dispatch pool —
        it runs the join in an executor under the drain timeout."""

        async def scenario(service, port):
            await service.submit_cell(
                CellRequest(platform="ap:staran", n=96, periods=1)
            )
            started = asyncio.get_running_loop().time()
            await service.stop()
            return asyncio.get_running_loop().time() - started

        elapsed = _run_service(scenario, drain_timeout_s=2.0)
        assert elapsed < 2.5
