"""The sweep service over real HTTP: byte-identity, coalescing,
admission rejections, stats and metrics (docs/service.md)."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.harness.figures import fig5
from repro.service import (
    CellRequest,
    ServiceConfig,
    SweepService,
    payload_bytes,
)

NS = (96, 192)
PERIODS = 1


@pytest.fixture(scope="module")
def report_fragment():
    """The fig5 fragment exactly as ``atm-repro report`` would embed it.

    Serialized through the report writer's settings and re-loaded, so
    the comparison below is against bytes that round-tripped a real
    ``report.json`` document, not against live Python objects.
    """
    fig = fig5(ns=NS, periods=PERIODS)
    document = json.dumps(
        {"experiments": {"fig5": {"data": fig.to_dict()}}},
        indent=2,
        sort_keys=True,
    )
    data = json.loads(document)["experiments"]["fig5"]["data"]
    assert data["measurements"], "figures must embed raw measurements"
    return data


async def _http(reader, writer, method, path, body=b""):
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(body)}\r\nConnection: keep-alive\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + body)
    await writer.drain()
    status = int((await reader.readline()).split(b" ")[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    payload = await reader.readexactly(length) if length else b""
    return status, headers, payload


async def _post_cell(port, body_obj):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        return await _http(
            reader, writer, "POST", "/v1/cell", json.dumps(body_obj).encode()
        )
    finally:
        writer.close()
        await writer.wait_closed()


def _run_service(coro_fn, **config_kwargs):
    """Start a port-0 server, run ``coro_fn(service, port)``, stop."""

    async def runner():
        config_kwargs.setdefault("batch_window_s", 0.02)
        service = SweepService(ServiceConfig(port=0, **config_kwargs))
        server = await service.serve()
        try:
            return await coro_fn(service, service.bound_port)
        finally:
            server.close()
            await server.wait_closed()
            await service.stop()

    return asyncio.run(runner())


class TestByteIdentity:
    def test_served_cell_equals_report_fragment(self, report_fragment):
        async def scenario(service, port):
            results = {}
            for platform in report_fragment["measurements"]:
                for j, n in enumerate(report_fragment["ns"]):
                    status, headers, payload = await _post_cell(
                        port,
                        {"platform": platform, "n": n, "periods": PERIODS},
                    )
                    assert status == 200, payload
                    results[(platform, j)] = (headers["x-atm-source"], payload)
            return results

        results = _run_service(scenario)
        for (platform, j), (_source, payload) in results.items():
            fragment = report_fragment["measurements"][platform][j]
            assert payload == payload_bytes(fragment), (platform, j)

    def test_byte_identity_survives_coalescing(self, report_fragment):
        platform = next(iter(report_fragment["measurements"]))

        async def scenario(service, port):
            body = {"platform": platform, "n": NS[0], "periods": PERIODS}
            return await asyncio.gather(
                *(_post_cell(port, body) for _ in range(8))
            )

        responses = _run_service(scenario)
        expected = payload_bytes(
            report_fragment["measurements"][platform][0]
        )
        sources = []
        for status, headers, payload in responses:
            assert status == 200
            assert payload == expected
            sources.append(headers["x-atm-source"])
        assert sources.count("computed") == 1
        assert sources.count("coalesced") == len(responses) - 1

    def test_byte_identity_under_jobs_4_sweep(self, report_fragment):
        platforms = sorted(report_fragment["measurements"])

        async def scenario(service, port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                body = json.dumps(
                    {
                        "platforms": platforms,
                        "ns": list(NS),
                        "periods": PERIODS,
                    }
                ).encode()
                return await _http(reader, writer, "POST", "/v1/sweep", body)
            finally:
                writer.close()
                await writer.wait_closed()

        status, _headers, payload = _run_service(scenario, jobs=4)
        assert status == 200, payload
        served = json.loads(payload.decode("utf-8"))
        assert served["ns"] == list(NS)
        for platform in platforms:
            for j in range(len(NS)):
                assert payload_bytes(
                    served["measurements"][platform][j]
                ) == payload_bytes(
                    report_fragment["measurements"][platform][j]
                ), (platform, j)


class TestHttpSurface:
    def test_healthz_platforms_stats_metrics(self):
        async def scenario(service, port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                health = await _http(reader, writer, "GET", "/healthz")
                platforms = await _http(reader, writer, "GET", "/v1/platforms")
                stats = await _http(reader, writer, "GET", "/stats")
                metrics = await _http(reader, writer, "GET", "/metrics")
                missing = await _http(reader, writer, "GET", "/nope")
                return health, platforms, stats, metrics, missing
            finally:
                writer.close()
                await writer.wait_closed()

        health, platforms, stats, metrics, missing = _run_service(scenario)
        assert health[0] == 200
        assert "ap:staran" in json.loads(platforms[2].decode())["platforms"]
        body = json.loads(stats[2].decode())
        assert body["served"] == 0 and body["jobs"] == 1
        assert metrics[0] == 200
        # no traffic yet: a valid, empty exposition (families appear as
        # soon as requests record series — TestHttpSurface below)
        assert metrics[2].endswith(b"# EOF\n")
        assert missing[0] == 404

    def test_malformed_requests_are_400(self):
        async def scenario(service, port):
            return (
                await _post_cell(port, {"platform": "no-such", "n": 96}),
                await _post_cell(port, {"platform": "ap:staran"}),
            )

        for status, _headers, payload in _run_service(scenario):
            assert status == 400
            assert b"error" in payload

    def test_deadline_rejection_carries_the_verdict(self):
        async def scenario(service, port):
            return await _post_cell(
                port,
                {
                    "platform": "mimd:xeon-16",
                    "n": 1920,
                    "deadline_s": 1e-6,
                },
            )

        status, headers, payload = _run_service(scenario)
        assert status == 429
        assert headers.get("retry-after")
        verdict = json.loads(payload.decode("utf-8"))
        assert verdict["outcome"] == "rejected_deadline"
        assert verdict["admitted"] is False
        assert verdict["margin_s"] < 0
        assert verdict["estimated_s"] > verdict["deadline_s"]

    def test_backpressure_rejection_is_503(self):
        async def scenario_sweep(service, port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                pending = asyncio.ensure_future(
                    _post_cell(port, {"platform": "ap:staran", "n": 96})
                )
                for _ in range(40):
                    if service._pending_cells:
                        break
                    await asyncio.sleep(0.005)
                body = json.dumps(
                    {"platforms": ["ap:staran"], "ns": [97, 98, 99]}
                ).encode()
                rejected = await _http(
                    reader, writer, "POST", "/v1/sweep", body
                )
                first = await pending
                return first, rejected
            finally:
                writer.close()
                await writer.wait_closed()

        first, rejected = _run_service(
            scenario_sweep, max_queue_cells=2, batch_window_s=0.2
        )
        assert first[0] == 200
        assert rejected[0] == 503
        verdict = json.loads(rejected[2].decode("utf-8"))
        assert verdict["outcome"] == "rejected_backpressure"

    def test_stats_and_metrics_track_traffic(self):
        async def scenario(service, port):
            await _post_cell(port, {"platform": "ap:staran", "n": 96, "periods": 1})
            await _post_cell(port, {"platform": "ap:staran", "n": 96, "periods": 1})
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                stats = await _http(reader, writer, "GET", "/stats")
                metrics = await _http(reader, writer, "GET", "/metrics")
            finally:
                writer.close()
                await writer.wait_closed()
            return json.loads(stats[2].decode()), metrics[2].decode()

        stats, exposition = _run_service(scenario)
        assert stats["served"] == 2
        assert stats["batches"] >= 1
        assert stats["cell_estimate_s"] > 0
        assert 'outcome="served"' in exposition
        assert "atm_service_request_seconds" in exposition
        assert "atm_service_batch_cells" in exposition


class TestSubmitApi:
    def test_memory_tier_serves_warm_repeats(self):
        async def scenario(service, port):
            request = CellRequest(platform="ap:staran", n=96, periods=1)
            first = await service.submit_cell(request)
            second = await service.submit_cell(request)
            return first, second

        (src1, m1), (src2, m2) = _run_service(scenario)
        assert (src1, src2) == ("computed", "cache")
        assert payload_bytes(m1.to_dict()) == payload_bytes(m2.to_dict())

    def test_sweep_source_is_cache_when_fully_warm(self):
        async def scenario(service, port):
            cells = [
                CellRequest(platform="ap:staran", n=n, periods=1) for n in NS
            ]
            first_source, _ = await service.submit_sweep(cells)
            second_source, measurements = await service.submit_sweep(cells)
            return first_source, second_source, measurements

        first_source, second_source, measurements = _run_service(scenario)
        assert first_source == "computed"
        assert second_source == "cache"
        assert len(measurements) == len(NS)
