"""Schema validation of the service wire protocol (docs/service.md)."""

from __future__ import annotations

import json

import pytest

from repro.harness.cache import ResultCache
from repro.backends.registry import resolve_backend
from repro.core.collision import DetectionMode
from repro.service.protocol import (
    MAX_SERVED_N,
    CellRequest,
    ProtocolError,
    parse_cell_request,
    parse_sweep_request,
    payload_bytes,
)


class TestParseCellRequest:
    def test_minimal_request_gets_batch_defaults(self):
        req = parse_cell_request({"platform": "ap:staran", "n": 96})
        assert req == CellRequest(platform="ap:staran", n=96)
        assert (req.seed, req.periods, req.mode) == (2018, 3, "signed")

    def test_full_request_round_trips(self):
        req = parse_cell_request(
            {
                "platform": "cuda:titan-x-pascal",
                "n": 480,
                "seed": 7,
                "periods": 2,
                "mode": "paper-abs",
            }
        )
        assert req.detection_mode is DetectionMode.PAPER_ABS
        assert req.compat_key == (7, 2, "paper-abs")

    @pytest.mark.parametrize(
        "body",
        [
            "not a dict",
            {"n": 96},
            {"platform": "no-such-platform", "n": 96},
            {"platform": "ap:staran"},
            {"platform": "ap:staran", "n": 0},
            {"platform": "ap:staran", "n": MAX_SERVED_N + 1},
            {"platform": "ap:staran", "n": True},
            {"platform": "ap:staran", "n": "96"},
            {"platform": "ap:staran", "n": 96, "periods": 0},
            {"platform": "ap:staran", "n": 96, "seed": -1},
            {"platform": "ap:staran", "n": 96, "mode": "bogus"},
        ],
    )
    def test_invalid_bodies_raise_protocol_error(self, body):
        with pytest.raises(ProtocolError):
            parse_cell_request(body)

    def test_cache_key_matches_the_batch_harness(self):
        req = parse_cell_request({"platform": "ap:staran", "n": 96})
        expected = ResultCache.key_for(
            resolve_backend("ap:staran"),
            n=96,
            seed=2018,
            periods=3,
            mode=DetectionMode.SIGNED,
        )
        assert req.cache_key() == expected


class TestParseSweepRequest:
    def test_cross_product_in_matrix_order(self):
        cells = parse_sweep_request(
            {"platforms": ["ap:staran", "mimd:xeon-16"], "ns": [96, 192]}
        )
        assert [(c.platform, c.n) for c in cells] == [
            ("ap:staran", 96),
            ("ap:staran", 192),
            ("mimd:xeon-16", 96),
            ("mimd:xeon-16", 192),
        ]
        assert len({c.compat_key for c in cells}) == 1

    @pytest.mark.parametrize(
        "body",
        [
            {"platforms": [], "ns": [96]},
            {"platforms": ["ap:staran"], "ns": []},
            {"platforms": ["ap:staran"], "ns": [96.5]},
            {"platforms": "ap:staran", "ns": [96]},
            {"platforms": ["ap:staran"], "ns": [0]},
            {"platforms": ["no-such"], "ns": [96]},
        ],
    )
    def test_invalid_sweeps_raise_protocol_error(self, body):
        with pytest.raises(ProtocolError):
            parse_sweep_request(body)

    def test_oversized_sweep_is_a_protocol_error(self):
        with pytest.raises(ProtocolError):
            parse_sweep_request(
                {"platforms": ["ap:staran"] * 65, "ns": list(range(1, 65))}
            )


class TestPayloadBytes:
    def test_matches_the_report_serializer(self):
        data = {"b": 2.5, "a": [1, 2], "nested": {"z": None, "y": "s"}}
        assert payload_bytes(data) == json.dumps(
            data, indent=2, sort_keys=True
        ).encode("utf-8")

    def test_requests_are_hashable_identity_keys(self):
        a = parse_cell_request({"platform": "ap:staran", "n": 96})
        b = parse_cell_request({"platform": "ap:staran", "n": 96, "seed": 2018})
        assert a == b and len({a, b}) == 1
