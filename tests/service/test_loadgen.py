"""Closed-loop load generator against a live server (docs/service.md).

The acceptance bar from the service issue: the generator sustains
>= 1000 concurrent in-flight requests against a local server, admission
rejections carry structured deadline verdicts, and the run's p50/p99
land in the metrics registry (and from there in the dashboard panel).
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.obs.dashboard import render_dashboard
from repro.obs.metrics import MetricsRegistry
from repro.service import LoadgenOptions, ServiceConfig, SweepService, run_loadgen
from repro.service.loadgen import render_summary


@pytest.fixture
def live_server():
    """A real server on an ephemeral port, on its own event loop thread.

    ``run_loadgen`` spins its own ``asyncio.run`` loop, so the server
    must live on a different one — exactly the CLI topology
    (``atm-repro serve`` and ``atm-repro loadtest`` are separate
    processes).
    """

    def factory(**config_kwargs):
        config_kwargs.setdefault("batch_window_s", 0.3)
        service = SweepService(ServiceConfig(port=0, **config_kwargs))
        started = threading.Event()
        stop = None
        port = None
        loop_holder = {}

        async def serve_until_stopped():
            nonlocal stop, port
            server = await service.serve()
            stop = asyncio.Event()
            port = service.bound_port
            loop_holder["loop"] = asyncio.get_running_loop()
            started.set()
            try:
                await stop.wait()
            finally:
                server.close()
                await server.wait_closed()
                await service.stop()

        thread = threading.Thread(
            target=lambda: asyncio.run(serve_until_stopped()), daemon=True
        )
        thread.start()
        assert started.wait(timeout=10), "server did not start"

        def shutdown():
            loop_holder["loop"].call_soon_threadsafe(stop.set)
            thread.join(timeout=10)

        return service, port, shutdown

    made = []

    def make(**kwargs):
        triple = factory(**kwargs)
        made.append(triple)
        return triple

    yield make
    for _service, _port, shutdown in made:
        shutdown()


def test_thousand_concurrent_inflight_requests(live_server):
    service, port, _shutdown = live_server()
    registry = MetricsRegistry()
    summary = run_loadgen(
        LoadgenOptions(port=port, concurrency=1000, requests=1000),
        registry=registry,
    )

    assert summary["sent"] == 1000
    assert summary["outcomes"].get("served") == 1000
    # every worker was in flight at once against the cold batch window
    assert summary["server_stats"]["inflight_requests_peak"] >= 1000
    # one batch computed the distinct cells; everyone else coalesced or
    # hit the in-memory tier
    assert summary["sources"].get("computed", 0) <= 10

    latency = summary["latency"]
    assert latency["count"] == 1000
    assert 0 < latency["p50_s"] <= latency["p99_s"] <= latency["max_s"]

    # the quantiles come from the registry's histogram series
    series = registry.series("atm_service_request_seconds")
    assert series, "loadgen must record client-side latency series"
    total = sum(instrument.count for instrument in series.values())
    assert total == 1000

    # and the same snapshot renders as the dashboard's latency panel
    html = render_dashboard({}, snapshot=registry.snapshot())
    assert "Service request latency" in html
    assert "endpoint=client" in html

    text = render_summary(summary)
    assert "p50" in text and "p99" in text


def test_rejections_carry_deadline_verdicts(live_server):
    service, port, _shutdown = live_server()
    summary = run_loadgen(
        LoadgenOptions(
            port=port, concurrency=50, requests=100, deadline_s=1e-6
        )
    )
    assert summary["outcomes"].get("rejected_deadline") == 100
    verdict = summary["rejection_sample"]
    assert verdict["outcome"] == "rejected_deadline"
    assert verdict["admitted"] is False
    assert verdict["margin_s"] < 0
    assert verdict["deadline_s"] == pytest.approx(1e-6)
    assert "rejection verdict sample" in render_summary(summary)


def test_metrics_out_writes_openmetrics(tmp_path, live_server):
    service, port, _shutdown = live_server()
    out = tmp_path / "loadgen.prom"
    summary = run_loadgen(
        LoadgenOptions(port=port, concurrency=10, requests=20),
        metrics_out=str(out),
    )
    assert summary["sent"] == 20
    text = out.read_text(encoding="utf-8")
    assert 'endpoint="client"' in text
    assert text.endswith("# EOF\n")


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        from repro.service.loadgen import _CircuitBreaker

        breaker = _CircuitBreaker(threshold=3, cooldown_s=60.0)
        assert breaker.allow() and breaker.state == "closed"
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and breaker.opens == 1
        assert not breaker.allow()  # cooldown has not elapsed

    def test_half_open_probe_closes_or_reopens(self):
        from repro.service.loadgen import _CircuitBreaker

        breaker = _CircuitBreaker(threshold=1, cooldown_s=0.0)
        breaker.record_failure()
        assert breaker.state == "open"
        # zero cooldown: the next allow() is the half-open probe...
        assert breaker.allow() and breaker.state == "half-open"
        # ...and only one probe flies at a time
        assert not breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and breaker.opens == 2
        assert breaker.allow()  # half-open again
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_success_resets_the_failure_streak(self):
        from repro.service.loadgen import _CircuitBreaker

        breaker = _CircuitBreaker(threshold=2, cooldown_s=60.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed", "streak must reset on success"


class TestOutcomeTaxonomy:
    def test_503_splits_draining_from_backpressure(self):
        from repro.service.loadgen import _outcome_for

        draining = b'{"outcome": "rejected_draining", "admitted": false}'
        backpressure = b'{"outcome": "rejected_backpressure"}'
        assert _outcome_for(503, draining) == "rejected_draining"
        assert _outcome_for(503, backpressure) == "rejected_backpressure"
        assert _outcome_for(503, b"not json") == "rejected_backpressure"

    def test_plain_statuses_map_directly(self):
        from repro.service.loadgen import _outcome_for

        assert _outcome_for(200, b"") == "served"
        assert _outcome_for(400, b"") == "bad_request"
        assert _outcome_for(429, b"") == "rejected_deadline"
        assert _outcome_for(500, b"") == "error"


def test_clean_run_reports_empty_resilience_taxonomy(live_server):
    """A fault-free burst: zero retries, zero errors, but the full retry
    taxonomy is still present as zeros in the metrics exposition."""
    from repro.service.loadgen import RETRY_REASONS

    _service, port, _shutdown = live_server()
    registry = MetricsRegistry()
    summary = run_loadgen(
        LoadgenOptions(port=port, concurrency=5, requests=10),
        registry=registry,
    )
    assert summary["outcomes"].get("served") == 10
    assert summary["retries"] == 0
    assert summary["errors"] == {}
    assert summary["rejections"] == {}
    assert summary["breaker_opens"] == 0
    for reason in RETRY_REASONS:
        value = registry.value(
            "atm_service_retries", endpoint="client", reason=reason
        )
        assert value == 0.0, (reason, value)
    assert "resilience:" not in render_summary(summary)


def test_connection_refused_exhausts_attempts_into_the_error_taxonomy():
    """No server at all: every request retries, fails as a reset, and
    the summary names the failure instead of crashing the generator."""
    import socket

    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]
    summary = run_loadgen(
        LoadgenOptions(
            port=free_port,
            concurrency=1,
            requests=2,
            max_attempts=2,
            backoff_s=0.001,
            breaker_threshold=100,  # keep the breaker out of this test
        )
    )
    assert summary["outcomes"] == {"error": 2}
    assert summary["errors"] == {"reset": 2}
    assert summary["retries"] == 2  # one retry per request before giving up
    text = render_summary(summary)
    assert "resilience: 2 retries" in text
    assert "reset" in text


def test_rejections_breakdown_keys_the_503_taxonomy(live_server):
    """Backpressure 503s retry and land in the rejections breakdown."""
    _service, port, _shutdown = live_server(
        max_queue_cells=1, batch_window_s=0.4
    )
    summary = run_loadgen(
        LoadgenOptions(
            port=port,
            concurrency=8,
            requests=16,
            max_attempts=2,
            backoff_s=0.001,
            mix=tuple(
                {"platform": "ap:staran", "n": 96 + 8 * i, "periods": 1}
                for i in range(8)
            ),
        )
    )
    total = sum(summary["outcomes"].values())
    assert total == 16
    rejected = summary["outcomes"].get("rejected_backpressure", 0)
    if rejected:
        assert summary["rejections"] == {"rejected_backpressure": rejected}
        assert "rejections:" in render_summary(summary)
