"""The deadline admission controller (repro.analysis.deadlines)."""

from __future__ import annotations

import pytest

from repro.analysis.deadlines import AdmissionController, AdmissionVerdict
from repro.obs.metrics import MetricsRegistry, activate_metrics, deactivate_metrics


def test_cold_controller_uses_the_prior():
    control = AdmissionController(cell_prior_s=0.1, dispatch_overhead_s=0.05)
    assert control.cell_estimate_s == pytest.approx(0.1)
    assert control.estimate_s(4, 2) == pytest.approx(0.05 + 6 * 0.1)


def test_admits_when_margin_is_positive():
    control = AdmissionController(cell_prior_s=0.01, dispatch_overhead_s=0.01)
    verdict = control.assess(5, queue_depth=0, deadline_s=10.0)
    assert verdict.admitted and verdict.outcome == "admitted"
    assert verdict.margin_s == pytest.approx(10.0 - verdict.estimated_s)


def test_rejects_when_deadline_cannot_be_met():
    control = AdmissionController(cell_prior_s=0.05, dispatch_overhead_s=0.05)
    verdict = control.assess(10, queue_depth=0, deadline_s=0.01)
    assert not verdict.admitted
    assert verdict.outcome == "rejected_deadline"
    assert verdict.margin_s < 0
    body = verdict.to_dict()
    assert body["estimated_s"] > body["deadline_s"]
    assert set(body) == {
        "admitted",
        "outcome",
        "cells",
        "queue_depth",
        "deadline_s",
        "estimated_s",
        "margin_s",
        "cell_estimate_s",
    }


def test_rejects_for_backpressure_when_queue_full():
    control = AdmissionController(max_queue_cells=10)
    verdict = control.assess(5, queue_depth=8, deadline_s=1e9)
    assert verdict.outcome == "rejected_backpressure"
    assert not verdict.admitted


def test_zero_cell_requests_always_admitted():
    control = AdmissionController(cell_prior_s=100.0)
    verdict = control.assess(0, queue_depth=10_000, deadline_s=1e-9)
    assert verdict.admitted
    assert verdict.estimated_s == 0.0


def test_ewma_tracks_observed_service_time():
    control = AdmissionController(cell_prior_s=1.0, ewma_alpha=0.5)
    control.observe_cell_seconds(0.0, cells=1)
    assert control.cell_estimate_s == pytest.approx(0.5)
    control.observe_cell_seconds(0.0, cells=1)
    assert control.cell_estimate_s == pytest.approx(0.25)
    # degenerate observations are ignored, not folded in
    control.observe_cell_seconds(-1.0, cells=1)
    control.observe_cell_seconds(1.0, cells=0)
    assert control.cell_estimate_s == pytest.approx(0.25)


def test_faster_observations_flip_a_rejection_to_admission():
    control = AdmissionController(
        cell_prior_s=0.5, dispatch_overhead_s=0.0, ewma_alpha=1.0
    )
    assert not control.assess(4, queue_depth=0, deadline_s=1.0).admitted
    control.observe_cell_seconds(0.4, cells=4)  # 0.1 s/cell observed
    assert control.assess(4, queue_depth=0, deadline_s=1.0).admitted


def test_decisions_record_admission_margin_histogram():
    registry = MetricsRegistry()
    activate_metrics(registry)
    try:
        control = AdmissionController(cell_prior_s=0.05)
        control.assess(1, queue_depth=0, deadline_s=10.0)
        control.assess(1000, queue_depth=0, deadline_s=0.001)
    finally:
        deactivate_metrics()
    series = registry.series("atm_service_admission_margin_seconds")
    outcomes = {key for key in series}
    assert any("admitted" in key for key in outcomes)
    assert any("rejected_deadline" in key for key in outcomes)


def test_constructor_rejects_nonsense():
    with pytest.raises(ValueError):
        AdmissionController(max_queue_cells=0)
    with pytest.raises(ValueError):
        AdmissionController(default_deadline_s=0.0)
    with pytest.raises(ValueError):
        AdmissionController(ewma_alpha=0.0)


def test_verdict_is_frozen():
    verdict = AdmissionController().assess(1, queue_depth=0)
    assert isinstance(verdict, AdmissionVerdict)
    with pytest.raises(AttributeError):
        verdict.admitted = False


def test_draining_rejects_new_cells_before_any_other_check():
    control = AdmissionController(max_queue_cells=10)
    assert not control.draining
    control.set_draining()
    assert control.draining
    verdict = control.assess(1, queue_depth=0, deadline_s=1e9)
    assert not verdict.admitted
    assert verdict.outcome == "rejected_draining"
    # draining wins even where backpressure would also apply
    assert (
        control.assess(50, queue_depth=9, deadline_s=1e9).outcome
        == "rejected_draining"
    )


def test_draining_still_admits_zero_cell_requests():
    """Fully cached/coalescible requests add no cells — they must keep
    flowing during the drain so in-flight work keeps its coalescers."""
    control = AdmissionController()
    control.set_draining()
    verdict = control.assess(0, queue_depth=5)
    assert verdict.admitted and verdict.outcome == "admitted"


def test_draining_is_reversible():
    control = AdmissionController()
    control.set_draining()
    control.set_draining(False)
    assert not control.draining
    assert control.assess(1, queue_depth=0, deadline_s=1e9).admitted
