"""Live-server chaos: SIGKILL mid-burst + ``--resume`` byte-identity,
SIGTERM drain under load, and ``--inject-faults`` against the resilient
load generator (docs/service.md, "Crash safety & drain").

These tests run ``atm-repro serve`` as a real subprocess — the durable
journal must survive an actual SIGKILL, not a mocked one.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.core.collision import DetectionMode
from repro.harness.parallel import measure_cells
from repro.service import LoadgenOptions, payload_bytes, run_loadgen

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src")

#: the burst: >= 200 distinct admitted cells (the acceptance bar).
BURST_NS = tuple(range(8, 8 + 200))
PLATFORM = "ap:staran"


def _serve(tmp_path, *extra_args):
    """Start ``atm-repro serve --port 0`` and return (proc, port)."""
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.harness.cli",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=str(tmp_path),
    )
    banner = []
    deadline = time.monotonic() + 60
    port = None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        banner.append(line)
        if "listening on" in line:
            port = int(line.rsplit(":", 1)[1])
            break
    if port is None:
        proc.kill()
        raise AssertionError(f"server never bound: {''.join(banner)}")
    return proc, port


def _read_remaining(proc):
    try:
        out = proc.stdout.read() or ""
    except ValueError:
        out = ""
    return out


def _post_body(cell):
    return json.dumps(cell).encode("utf-8")


def _fire_and_forget(port, cell):
    """Send a POST without reading the response (the burst under kill)."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=10)
    body = _post_body(cell)
    head = (
        f"POST /v1/cell HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(body)}\r\nConnection: keep-alive\r\n\r\n"
    )
    sock.sendall(head.encode("latin-1") + body)
    return sock


def _fetch(port, path, data=None, timeout=60):
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=data,
        method="POST" if data is not None else "GET",
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.status, dict(resp.headers), resp.read()


def _count_admitted(journal_path):
    if not journal_path.exists():
        return 0
    count = 0
    for line in journal_path.read_text(encoding="utf-8").splitlines():
        try:
            if json.loads(line).get("event") == "admitted":
                count += 1
        except json.JSONDecodeError:
            pass
    return count


@pytest.fixture(scope="module")
def burst_anchor():
    """The uninterrupted run's bytes: every burst cell straight from the
    batch harness, serialized exactly as a report.json fragment."""
    _names, rows = measure_cells(
        [PLATFORM], BURST_NS, seed=2018, periods=1, mode=DetectionMode.SIGNED
    )
    return {
        n: payload_bytes(measurement.to_dict())
        for n, measurement in zip(BURST_NS, rows[0])
    }


class TestSigkillResume:
    def test_sigkill_mid_burst_then_resume_is_byte_identical(
        self, tmp_path, burst_anchor
    ):
        """The acceptance scenario: >= 200 admitted requests, SIGKILL,
        restart with --resume — every admitted fingerprint is served or
        replayed and the payload bytes match an uninterrupted run."""
        cache_dir = tmp_path / "cache"
        journal = cache_dir / "service-journal.jsonl"
        # A huge batch window (and a deadline that tolerates it): cells
        # are admitted and journaled but never dispatched before the kill.
        proc, port = _serve(
            tmp_path,
            "--cache-dir",
            str(cache_dir),
            "--batch-window",
            "60",
            "--default-deadline",
            "300",
        )
        sockets = []
        try:
            for n in BURST_NS:
                sockets.append(
                    _fire_and_forget(
                        port, {"platform": PLATFORM, "n": n, "periods": 1}
                    )
                )
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if _count_admitted(journal) >= len(BURST_NS):
                    break
                time.sleep(0.05)
            admitted = _count_admitted(journal)
            assert admitted >= 200, f"only {admitted} admissions journaled"
            proc.kill()  # SIGKILL: no drain, no flush, no goodbye
            proc.wait(timeout=30)
        finally:
            for sock in sockets:
                sock.close()
            if proc.poll() is None:
                proc.kill()

        resumed, port = _serve(
            tmp_path,
            "--cache-dir",
            str(cache_dir),
            "--batch-window",
            "0.05",
            "--resume",
        )
        try:
            deadline = time.monotonic() + 120
            pending = None
            while time.monotonic() < deadline:
                _status, _headers, payload = _fetch(port, "/stats")
                stats = json.loads(payload.decode("utf-8"))
                pending = stats["journal"]["pending"]
                if pending == 0:
                    break
                time.sleep(0.1)
            assert pending == 0, f"{pending} admitted cells never replayed"
            # Every admitted fingerprint came back: cells served before
            # the kill restore from their journaled payloads, the rest
            # re-enter the dispatcher (max_batch_cells may have flushed
            # an early batch before the kill landed).
            assert (
                stats["restored_cells"] + stats["replayed_cells"]
                == len(BURST_NS)
            ), stats
            assert stats["journal"]["dropped_lines"] <= 1  # one torn tail at most
            # Every burst cell now answers from the replayed results,
            # byte-identical to the uninterrupted batch run.
            for n in BURST_NS:
                status, headers, payload = _fetch(
                    port,
                    "/v1/cell",
                    data=_post_body(
                        {"platform": PLATFORM, "n": n, "periods": 1}
                    ),
                )
                assert status == 200
                assert headers["X-Atm-Source"] == "cache", n
                assert payload == burst_anchor[n], f"bytes differ at n={n}"
        finally:
            resumed.send_signal(signal.SIGTERM)
            try:
                resumed.wait(timeout=30)
            except subprocess.TimeoutExpired:
                resumed.kill()
                resumed.wait(timeout=10)


class TestSigtermDrain:
    def test_sigterm_drains_inflight_and_rejects_new(
        self, tmp_path, burst_anchor
    ):
        """Zero dropped in-flight requests: a cell admitted before
        SIGTERM is still answered (byte-identical), while work arriving
        during the drain gets 503 + Retry-After."""
        cache_dir = tmp_path / "cache"
        journal = cache_dir / "service-journal.jsonl"
        proc, port = _serve(
            tmp_path, "--cache-dir", str(cache_dir), "--batch-window", "3",
            "--drain-timeout", "60",
        )
        inflight = None
        try:
            cell = {"platform": PLATFORM, "n": BURST_NS[0], "periods": 1}
            inflight = _fire_and_forget(port, cell)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if _count_admitted(journal) >= 1:
                    break
                time.sleep(0.02)
            assert _count_admitted(journal) >= 1
            proc.send_signal(signal.SIGTERM)
            # Give the loop's signal handler a beat to flip admission.
            time.sleep(0.2)
            # While the batch window drains, new work is turned away.
            rejected = None
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                try:
                    _fetch(
                        port,
                        "/v1/cell",
                        data=_post_body(
                            {"platform": PLATFORM, "n": 9999, "periods": 1}
                        ),
                        timeout=5,
                    )
                except urllib.error.HTTPError as exc:
                    rejected = exc
                    break
                except (ConnectionError, OSError):
                    break  # already fully shut down: too late to observe
                time.sleep(0.05)
            if rejected is not None:
                assert rejected.code == 503
                assert rejected.headers.get("Retry-After")
                verdict = json.loads(rejected.read().decode("utf-8"))
                assert verdict["outcome"] == "rejected_draining"
            # The in-flight request completes: read its full response.
            inflight.settimeout(60)
            raw = b""
            while b"\r\n\r\n" not in raw:
                raw += inflight.recv(65536)
            head, _, rest = raw.partition(b"\r\n\r\n")
            assert b" 200 " in head.splitlines()[0]
            length = next(
                int(line.split(b":")[1])
                for line in head.splitlines()
                if line.lower().startswith(b"content-length")
            )
            while len(rest) < length:
                rest += inflight.recv(65536)
            assert rest == burst_anchor[BURST_NS[0]]
            proc.wait(timeout=60)
            out = _read_remaining(proc)
            assert "atm-repro serve: draining" in out
            assert "drained in" in out
            assert proc.returncode == 0
        finally:
            if inflight is not None:
                inflight.close()
            if proc.poll() is None:
                proc.kill()


class TestServiceFaultInjection:
    def test_loadgen_rides_through_injected_resets_and_stalls(self, tmp_path):
        """--inject-faults resets/stalls vs the client's retry loop:
        every request is eventually served, the retry taxonomy shows
        why, and the summary carries the errors/rejections breakdown."""
        proc, port = _serve(
            tmp_path,
            "--batch-window",
            "0.02",
            "--inject-faults",
            "reset=0.3,stall=0.2,hang=0.05,seed=7",
        )
        try:
            summary = run_loadgen(
                LoadgenOptions(
                    port=port,
                    requests=40,
                    concurrency=4,
                    mix=({"platform": PLATFORM, "n": 96, "periods": 1},),
                    timeout_s=10.0,
                    max_attempts=12,
                    backoff_s=0.01,
                    jitter_seed=7,
                )
            )
        finally:
            proc.kill()
            proc.wait(timeout=30)
        assert summary["outcomes"].get("served") == 40, summary["outcomes"]
        assert summary["retries"] > 0
        assert summary["errors"] == {}
        assert set(summary["rejections"]) <= {
            "rejected_backpressure",
            "rejected_draining",
        }

    def test_client_timeouts_open_the_breaker_on_a_stalled_server(
        self, tmp_path
    ):
        """A fully stalled server exhausts the client's attempts with
        reason=timeout; the taxonomy names the failure in the report."""
        proc, port = _serve(
            tmp_path,
            "--inject-faults",
            "stall=1,hang=30,seed=3,attempts=99",
        )
        try:
            summary = run_loadgen(
                LoadgenOptions(
                    port=port,
                    requests=3,
                    concurrency=1,
                    mix=({"platform": PLATFORM, "n": 96, "periods": 1},),
                    timeout_s=0.2,
                    max_attempts=2,
                    backoff_s=0.01,
                    breaker_threshold=4,
                    breaker_cooldown_s=0.05,
                )
            )
        finally:
            proc.kill()
            proc.wait(timeout=30)
        assert summary["outcomes"].get("served") is None
        assert summary["errors"].get("timeout", 0) + summary["errors"].get(
            "circuit_open", 0
        ) == 3
        assert summary["retries"] >= 3  # each request retried at least once
        assert summary["breaker_opens"] >= 1
