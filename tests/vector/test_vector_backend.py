"""Unit tests for the wide-vector (AVX-512 / Xeon Phi) backend."""

import numpy as np
import pytest

from repro.backends.reference import ReferenceBackend
from repro.core import constants as C
from repro.core.radar import generate_radar_frame
from repro.core.setup import setup_flight
from repro.vector.backend import VectorBackend
from repro.vector.machine import AVX512_WORKSTATION, XEON_PHI_7250
from repro.vector.tasks import group_any_counts


class TestConfig:
    def test_registry_keys(self):
        assert VectorBackend("xeon-phi-7250").config is XEON_PHI_7250
        assert VectorBackend("avx512-16c").config is AVX512_WORKSTATION
        with pytest.raises(KeyError):
            VectorBackend("sse2-box")

    def test_peak_throughput(self):
        assert XEON_PHI_7250.peak_lane_ops_per_s == pytest.approx(68 * 16 * 1.4e9)

    def test_cost_helpers_validate(self):
        with pytest.raises(ValueError):
            XEON_PHI_7250.vector_seconds(-1.0)
        with pytest.raises(ValueError):
            XEON_PHI_7250.stream_seconds(-1.0)

    def test_groups(self):
        assert XEON_PHI_7250.groups(16) == 1
        assert XEON_PHI_7250.groups(17) == 2


class TestGroupAnyCounts:
    def test_matches_bruteforce(self):
        rng = np.random.default_rng(3)
        alt = rng.uniform(1000, 40000, 70)
        width = 16
        counts = group_any_counts(alt, width, C.ALTITUDE_SEPARATION_FT)
        n_groups = -(-70 // width)
        assert counts.shape == (n_groups,)
        for g in range(n_groups):
            lanes = alt[g * width : (g + 1) * width]
            expected = sum(
                1
                for p in range(70)
                if np.any(np.abs(lanes - alt[p]) < C.ALTITUDE_SEPARATION_FT)
            )
            assert counts[g] == expected

    def test_all_same_altitude(self):
        counts = group_any_counts(np.full(32, 1000.0), 16, 1000.0)
        assert np.all(counts == 32)


class TestEquivalence:
    def test_matches_reference(self):
        ref_fleet = setup_flight(130, 2018)
        vec_fleet = setup_flight(130, 2018)
        ref, vec = ReferenceBackend(), VectorBackend()
        for period in range(2):
            ref.track_and_correlate(
                ref_fleet, generate_radar_frame(ref_fleet, 2018, period)
            )
            vec.track_and_correlate(
                vec_fleet, generate_radar_frame(vec_fleet, 2018, period)
            )
        ref.detect_and_resolve(ref_fleet)
        vec.detect_and_resolve(vec_fleet)
        assert ref_fleet.state_equal(vec_fleet)


class TestTimingProperties:
    def test_deterministic(self):
        times = []
        for _ in range(2):
            fleet = setup_flight(192, 2018)
            b = VectorBackend()
            frame = generate_radar_frame(fleet, 2018, 0)
            times.append(
                (
                    b.track_and_correlate(fleet, frame).seconds,
                    b.detect_and_resolve(fleet).seconds,
                )
            )
        assert times[0] == times[1]
        assert VectorBackend().deterministic_timing

    def test_phi_beats_workstation_at_scale(self):
        t = {}
        for key in ("xeon-phi-7250", "avx512-16c"):
            fleet = setup_flight(3840, 2018)
            b = VectorBackend(key)
            t[key] = b.detect_and_resolve(fleet).seconds
        assert t["xeon-phi-7250"] < t["avx512-16c"]

    def test_workstation_wins_small_fleets(self):
        """Fork/join overhead and clock favour the 16-core box when the
        fleet is tiny — a real crossover wide-vector users know."""
        t = {}
        for key in ("xeon-phi-7250", "avx512-16c"):
            fleet = setup_flight(96, 2018)
            b = VectorBackend(key)
            frame = generate_radar_frame(fleet, 2018, 0)
            t[key] = b.track_and_correlate(fleet, frame).seconds
        assert t["avx512-16c"] < t["xeon-phi-7250"]

    def test_meets_deadlines_in_range(self):
        fleet = setup_flight(3840, 2018)
        b = VectorBackend()
        frame = generate_radar_frame(fleet, 2018, 0)
        t1 = b.track_and_correlate(fleet, frame).seconds
        t23 = b.detect_and_resolve(fleet).seconds
        assert t1 + t23 < C.PERIOD_SECONDS

    def test_breakdown_sums(self):
        fleet = setup_flight(192, 2018)
        b = VectorBackend()
        t = b.detect_and_resolve(fleet)
        assert t.breakdown.total == pytest.approx(t.seconds)

    def test_describe(self):
        info = VectorBackend().describe()
        assert info["lanes_per_core"] == 16
        assert "vector" in info["kind"]

    def test_schedule_never_misses(self):
        from repro.core.scheduler import run_schedule

        fleet = setup_flight(960, 2018)
        result = run_schedule(VectorBackend(), fleet, major_cycles=1)
        assert result.missed_deadlines == 0
