"""Direct unit tests for the SIMD task cost replays."""

import numpy as np
import pytest

from repro.core.radar import generate_radar_frame
from repro.core.resolution import detect_and_resolve
from repro.core.setup import setup_flight
from repro.core.tracking import correlate
from repro.simd.clearspeed import CSX600, CSX600_DUAL
from repro.simd.tasks import charge_setup, charge_task1, charge_task23


def tracked(n, seed=2018):
    fleet = setup_flight(n, seed)
    frame = generate_radar_frame(fleet, seed, 0)
    return fleet, correlate(fleet, frame)


class TestChargeTask1:
    def test_cycles_positive(self):
        fleet, stats = tracked(96)
        pe = charge_task1(CSX600, fleet.n, stats)
        assert pe.cycles > 0
        assert pe.vector_instructions > 0
        assert pe.reductions > 0

    def test_iterations_drive_cost(self):
        """Cost per radar iteration is constant at fixed stripe."""
        small_fleet, small_stats = tracked(48)
        big_fleet, big_stats = tracked(96)
        pe_small = charge_task1(CSX600, 48, small_stats)
        pe_big = charge_task1(CSX600, 96, big_stats)
        iters_small = sum(len(i) for i in small_stats.round_radar_ids)
        iters_big = sum(len(i) for i in big_stats.round_radar_ids)
        per_small = pe_small.cycles / iters_small
        per_big = pe_big.cycles / iters_big
        assert per_small == pytest.approx(per_big, rel=0.15)

    def test_stripe_multiplies_vector_cost(self):
        fleet, stats = tracked(960)
        one_chip = charge_task1(CSX600, 960, stats)
        two_chips = charge_task1(CSX600_DUAL, 960, stats)
        assert two_chips.cycles < one_chip.cycles
        assert one_chip.stripe == 10
        assert two_chips.stripe == 5


class TestChargeTask23:
    def test_detection_steps_equal_fleet(self):
        fleet = setup_flight(96, 2018)
        det, res = detect_and_resolve(fleet)
        pe = charge_task23(CSX600, 96, det, res)
        assert pe.cycles > 0

    def test_trials_add_cost(self):
        fleet = setup_flight(96, 2018)
        det, res = detect_and_resolve(fleet)
        base = charge_task23(CSX600, 96, det, res).cycles
        import copy

        res2 = copy.deepcopy(res)
        res2.trials_evaluated += 100
        more = charge_task23(CSX600, 96, det, res2).cycles
        assert more > base


class TestChargeSetup:
    def test_includes_network_load(self):
        pe = charge_setup(CSX600, 960)
        # Edge-on load of 960 elements over 96 PEs: 10 stripes x 96 hops.
        assert pe.cycles >= 960

    def test_scales_with_stripe_only(self):
        a = charge_setup(CSX600, 96).cycles
        b = charge_setup(CSX600, 192).cycles
        assert b > a
