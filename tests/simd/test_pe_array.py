"""Unit tests for the SIMD PE array cycle ledger."""

import math

import pytest

from repro.simd.instructions import DEFAULT_COSTS, Op
from repro.simd.pe_array import PEArray


class TestStriping:
    def test_one_element_per_pe(self):
        assert PEArray(96, 96).stripe == 1

    def test_virtual_pes(self):
        assert PEArray(96, 97).stripe == 2
        assert PEArray(96, 960).stripe == 10
        assert PEArray(96, 961).stripe == 11

    def test_fewer_elements_than_pes(self):
        assert PEArray(96, 10).stripe == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            PEArray(0, 10)
        with pytest.raises(ValueError):
            PEArray(96, 0)


class TestCharging:
    def test_vector_op_scales_with_stripe(self):
        a = PEArray(96, 96)
        b = PEArray(96, 960)
        a.vector(Op.ALU, 10)
        b.vector(Op.ALU, 10)
        assert b.cycles == pytest.approx(10 * a.cycles)

    def test_scalar_independent_of_size(self):
        a = PEArray(96, 96)
        b = PEArray(96, 9600)
        a.scalar(Op.SCALAR, 5)
        b.scalar(Op.SCALAR, 5)
        assert a.cycles == b.cycles

    def test_special_costs_more_than_alu(self):
        a = PEArray(96, 96)
        b = PEArray(96, 96)
        a.vector(Op.ALU, 1)
        b.vector(Op.SPECIAL, 1)
        assert b.cycles > a.cycles

    def test_broadcast(self):
        pe = PEArray(96, 96)
        pe.broadcast(3)
        assert pe.cycles == 3 * DEFAULT_COSTS.of(Op.BROADCAST)

    def test_negative_counts_rejected(self):
        pe = PEArray(96, 96)
        with pytest.raises(ValueError):
            pe.vector(Op.ALU, -1)
        with pytest.raises(ValueError):
            pe.scalar(Op.SCALAR, -1)

    def test_reduction_has_log_depth(self):
        small = PEArray(4, 4)
        big = PEArray(1024, 1024)
        small.reduce()
        big.reduce()
        # log2(1024)=10 levels vs log2(4)=2 levels.
        expected_small = DEFAULT_COSTS.reduction_base + DEFAULT_COSTS.reduction_per_level * 2
        expected_big = DEFAULT_COSTS.reduction_base + DEFAULT_COSTS.reduction_per_level * 10
        assert small.cycles == pytest.approx(expected_small)
        assert big.cycles == pytest.approx(expected_big)

    def test_reduction_striping_adds_local_pass(self):
        flat = PEArray(96, 96)
        striped = PEArray(96, 960)
        flat.reduce()
        striped.reduce()
        assert striped.cycles > flat.cycles

    def test_seconds_conversion(self):
        pe = PEArray(96, 96)
        pe.vector(Op.ALU, 250)  # 250 cycles at stripe 1
        assert pe.seconds(250e6) == pytest.approx(1e-6)
        with pytest.raises(ValueError):
            pe.seconds(0)

    def test_instruction_counters(self):
        pe = PEArray(96, 96)
        pe.vector(Op.ALU, 3)
        pe.scalar(Op.SCALAR, 2)
        pe.reduce(1)
        assert pe.vector_instructions == 3
        assert pe.scalar_instructions == 2
        assert pe.reductions == 1
