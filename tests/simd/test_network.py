"""Unit tests for the ring network model."""

import pytest

from repro.simd.network import RingNetwork


class TestRing:
    def test_shift_wraps(self):
        ring = RingNetwork(96)
        assert ring.shift_cycles(96) == 0  # full loop
        assert ring.shift_cycles(97) == ring.shift_cycles(1)

    def test_shift_scales_with_words(self):
        ring = RingNetwork(96)
        assert ring.shift_cycles(5, words=4) == 4 * ring.shift_cycles(5)

    def test_distribute_full_array(self):
        ring = RingNetwork(96)
        assert ring.distribute_cycles(96) == 96

    def test_distribute_striped(self):
        ring = RingNetwork(96)
        assert ring.distribute_cycles(97) == 192  # two stripes

    def test_distribute_empty(self):
        assert RingNetwork(96).distribute_cycles(0) == 0

    def test_gather_matches_distribute(self):
        ring = RingNetwork(96)
        assert ring.gather_cycles(500) == ring.distribute_cycles(500)

    def test_validation(self):
        with pytest.raises(ValueError):
            RingNetwork(0)
        with pytest.raises(ValueError):
            RingNetwork(96, cycles_per_hop=0)
        with pytest.raises(ValueError):
            RingNetwork(96).distribute_cycles(-1)
