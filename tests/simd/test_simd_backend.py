"""Unit tests for the ClearSpeed SIMD backend and task cost replays."""

import numpy as np
import pytest

from repro.backends.reference import ReferenceBackend
from repro.core.radar import generate_radar_frame
from repro.core.setup import setup_flight
from repro.simd.backend import SimdBackend
from repro.simd.clearspeed import CSX600, CSX600_DUAL


class TestConfig:
    def test_csx600_is_96_pes_at_250mhz(self):
        assert CSX600.n_pes == 96
        assert CSX600.clock_hz == 250e6

    def test_by_key(self):
        assert SimdBackend("clearspeed-csx600").config is CSX600
        with pytest.raises(KeyError):
            SimdBackend("clearspeed-csx900")


class TestEquivalence:
    def test_matches_reference(self):
        ref_fleet = setup_flight(150, 2018)
        simd_fleet = setup_flight(150, 2018)
        ref, simd = ReferenceBackend(), SimdBackend()
        for period in range(2):
            ref.track_and_correlate(
                ref_fleet, generate_radar_frame(ref_fleet, 2018, period)
            )
            simd.track_and_correlate(
                simd_fleet, generate_radar_frame(simd_fleet, 2018, period)
            )
        ref.detect_and_resolve(ref_fleet)
        simd.detect_and_resolve(simd_fleet)
        assert ref_fleet.state_equal(simd_fleet)


class TestTiming:
    def test_deterministic(self):
        times = []
        for _ in range(2):
            fleet = setup_flight(96, 2018)
            b = SimdBackend()
            frame = generate_radar_frame(fleet, 2018, 0)
            times.append(
                (
                    b.track_and_correlate(fleet, frame).seconds,
                    b.detect_and_resolve(fleet).seconds,
                )
            )
        assert times[0] == times[1]

    def test_stripe_reported(self):
        fleet = setup_flight(960, 2018)
        b = SimdBackend()
        frame = generate_radar_frame(fleet, 2018, 0)
        t = b.track_and_correlate(fleet, frame)
        assert t.stats["stripe"] == 10

    def test_task1_roughly_linear_at_fixed_stripe(self):
        """With stripe pinned at 1 (n <= 96), Task 1 grows ~linearly in
        the radar count."""
        times = {}
        for n in (24, 48, 96):
            fleet = setup_flight(n, 2018)
            b = SimdBackend()
            frame = generate_radar_frame(fleet, 2018, 0)
            times[n] = b.track_and_correlate(fleet, frame).seconds
        ratio = times[96] / times[24]
        assert 2.5 < ratio < 5.5  # ~4x for 4x the reports

    def test_striping_bends_the_curve(self):
        """Beyond 96 aircraft each vector op replays per stripe: going
        96 -> 960 costs much more than 10x on Task 2+3."""
        t = {}
        for n in (96, 960):
            fleet = setup_flight(n, 2018)
            b = SimdBackend()
            t[n] = b.detect_and_resolve(fleet).seconds
        assert t[960] / t[96] > 20

    def test_dual_chip_is_faster_at_scale(self):
        f1 = setup_flight(1920, 2018)
        f2 = setup_flight(1920, 2018)
        t1 = SimdBackend(CSX600).detect_and_resolve(f1).seconds
        t2 = SimdBackend(CSX600_DUAL).detect_and_resolve(f2).seconds
        assert t2 < t1

    def test_meets_deadline_in_tested_range(self):
        from repro.core import constants as C

        fleet = setup_flight(3840, 2018)
        b = SimdBackend()
        frame = generate_radar_frame(fleet, 2018, 0)
        t1 = b.track_and_correlate(fleet, frame).seconds
        t23 = b.detect_and_resolve(fleet).seconds
        assert t1 + t23 < C.PERIOD_SECONDS

    def test_setup_timing(self):
        t = SimdBackend().setup_timing(960)
        assert t.seconds > 0

    def test_describe_and_peak(self):
        b = SimdBackend()
        assert b.describe()["n_pes"] == 96
        assert b.peak_throughput_ops_per_s() == pytest.approx(96 * 250e6)
